"""The Name-layer refinement experiment (paper section 6.3, Figures 4/10).

Proves that the production byte-level comparison
:func:`repro.engine.gopy.rawname.compare_raw` refines the abstract
word-level :func:`repro.engine.gopy.nameops.name_match` under the interface
relation linking the two encodings:

- the *concrete* input is a byte array (presentation order, ``'.'``
  separators) whose non-separator bytes are symbolic;
- the *abstract* input is the reversed list of symbolic label codes;
- the relation axioms state, for every interned label ``L`` and every
  query-label position ``j``: *the bytes of label j spell L* ⟺
  *code variable m_j equals code(L)* — which is exactly what the
  order-preserving interner guarantees.

Following the paper, the other argument (the tree node's name) is concrete,
and the query's length is bounded so the byte-level path set is finite: the
checker enumerates every (label count, per-label byte length) shape within
the bound and proves the refinement per shape.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.dns.interner import LabelInterner
from repro.dns.name import DnsName
from repro.engine.gopy import nameops, rawname
from repro.engine.gopy.consts import SEP
from repro.refine import check_refinement
from repro.solver import Solver, and_, beq, eq, ge, iconst, ivar, le, ne
from repro.solver.terms import BoolExpr
from repro.symex import Executor, ListVal, PathState

#: Symbolic query bytes range over lowercase letters.
BYTE_MIN, BYTE_MAX = 97, 122


def byte_encode(name: DnsName) -> List[int]:
    """Presentation-order bytes with '.' separators (Figure 4's encoding)."""
    out: List[int] = []
    for index, label in enumerate(name.labels):
        if index:
            out.append(SEP)
        out.extend(ord(ch) for ch in label)
    return out


@dataclass
class NameRefinementReport:
    """Aggregated result over every bounded shape."""

    node_name: str
    verified: bool = True
    shapes_checked: int = 0
    failures: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    code_paths: int = 0
    pairs_checked: int = 0

    def describe(self) -> str:
        status = "VERIFIED" if self.verified else "FAILED"
        lines = [
            f"Name layer: compare_raw ⊑ name_match vs {self.node_name}: {status} "
            f"({self.shapes_checked} shapes, {self.code_paths} byte-level paths, "
            f"{self.elapsed_seconds:.2f}s)"
        ]
        lines.extend("  " + f for f in self.failures[:10])
        return "\n".join(lines)


def _shapes(max_labels: int, max_label_len: int):
    for count in range(1, max_labels + 1):
        for lengths in itertools.product(range(1, max_label_len + 1), repeat=count):
            yield lengths


def check_name_refinement(
    node_name: DnsName,
    extra_labels: Sequence[str] = (),
    max_labels: int = 3,
    max_label_len: int = 3,
    raw_function: str = "compare_raw",
    solver: Solver = None,
) -> NameRefinementReport:
    """Run the section 6.3 experiment against one concrete node name."""
    from repro.core.pipeline import _compiled  # shared IR cache

    interner = LabelInterner(list(node_name.labels) + list(extra_labels))
    executor = Executor(
        [_compiled(rawname), _compiled(nameops)], solver=solver
    )
    report = NameRefinementReport(node_name.to_text())
    started = time.perf_counter()

    node_bytes = byte_encode(node_name)
    node_codes = list(interner.encode_name(node_name))

    for lengths in _shapes(max_labels, max_label_len):
        state = PathState()
        # Presentation order is the reverse of significance order: byte
        # label j (presentation) corresponds to code variable m_{k-1-j}.
        count = len(lengths)
        byte_items: List[object] = []
        byte_vars_per_sig: List[List[object]] = [None] * count
        for pres_j, length in enumerate(lengths):
            if pres_j:
                byte_items.append(iconst(SEP))
            sig = count - 1 - pres_j
            label_vars = [ivar(f"b{sig}_{p}") for p in range(length)]
            byte_vars_per_sig[sig] = label_vars
            byte_items.extend(label_vars)
        code_vars = [ivar(f"m{j}") for j in range(count)]

        n1_bytes_ptr = state.memory.alloc(ListVal.concrete(byte_items))
        n2_bytes_ptr = state.memory.alloc(
            ListVal.concrete([iconst(b) for b in node_bytes])
        )
        n1_codes_ptr = state.memory.alloc(ListVal.concrete(code_vars))
        n2_codes_ptr = state.memory.alloc(
            ListVal.concrete([iconst(c) for c in node_codes])
        )

        pre: List[BoolExpr] = []
        for label_vars in byte_vars_per_sig:
            for var in label_vars:
                pre.append(ge(var, BYTE_MIN))
                pre.append(le(var, BYTE_MAX))
        for var in code_vars:
            pre.append(ge(var, interner.min_code))
            pre.append(le(var, interner.max_code))

        relation = _relation_axioms(interner, byte_vars_per_sig, code_vars)

        shape_report = check_refinement(
            executor,
            raw_function,
            "name_match",
            [n1_bytes_ptr, n2_bytes_ptr],
            [n1_codes_ptr, n2_codes_ptr],
            state=state,
            pre=pre,
            relation=relation,
        )
        report.shapes_checked += 1
        report.code_paths += shape_report.code_paths
        report.pairs_checked += shape_report.pairs_checked
        if not shape_report.verified:
            report.verified = False
            mismatch = shape_report.mismatches[0]
            report.failures.append(
                f"shape {lengths}: {mismatch.describe()}"
            )
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _relation_axioms(
    interner: LabelInterner,
    byte_vars_per_sig: List[List[object]],
    code_vars: List[object],
) -> List[BoolExpr]:
    """The interface configuration R: byte spelling <=> label code."""
    axioms: List[BoolExpr] = []
    for sig, label_vars in enumerate(byte_vars_per_sig):
        for label in interner.universe:
            code = interner.code(label)
            if len(label) != len(label_vars):
                axioms.append(ne(code_vars[sig], code))
                continue
            spelled = and_(
                *[eq(var, ord(ch)) for var, ch in zip(label_vars, label)]
            )
            axioms.append(beq(spelled, eq(code_vars[sig], code)))
    return axioms

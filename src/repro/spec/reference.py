"""Independent reference resolver over :mod:`repro.dns` objects.

A third, straightforward implementation of the authoritative-resolution
semantics, written directly against the domain model (no GoPy, no
encoding). It exists to triangulate: the executable top-level
specification, the engine, and this resolver are three independently
written artifacts; the counterexample validator and the differential
tester cross-check them. Behaviour matches the top-level specification
(:mod:`repro.spec.toplevel`) clause for clause.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dns.message import Query, Response
from repro.dns.name import DnsName
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RCode, RRType
from repro.dns.zone import Zone

#: CNAME chains longer than this are cut off (must equal the GoPy MAX_CHASE).
MAX_CHASE = 8


def reference_resolve(zone: Zone, query: Query) -> Response:
    """Authoritatively resolve ``query`` against ``zone``."""
    state = _State(zone)
    if not query.qname.is_subdomain_of(zone.origin):
        return state.finish(query, RCode.REFUSED, aa=False)
    state.lookup(query.qname, query.qtype, depth=0)
    return state.finish(query, state.rcode, state.aa)


class _State:
    def __init__(self, zone: Zone):
        self.zone = zone
        self.rcode = RCode.NOERROR
        self.aa = False
        self.answer: List[ResourceRecord] = []
        self.authority: List[ResourceRecord] = []
        self.additional: List[ResourceRecord] = []
        self.records = sorted(
            zone.records,
            key=lambda r: (r.rname.canonical_key(), int(r.rtype), r.rdata.to_text()),
        )

    # -- primitive queries over the flat record list ------------------------

    def _at(self, name: DnsName) -> List[ResourceRecord]:
        return [r for r in self.records if r.rname == name]

    def _exists_at(self, name: DnsName) -> bool:
        return any(r.rname == name for r in self.records)

    def _exists_below(self, name: DnsName) -> bool:
        return any(r.rname.is_proper_subdomain_of(name) for r in self.records)

    def _cut(self, name: DnsName) -> Optional[DnsName]:
        cuts = [
            r.rname
            for r in self.records
            if r.rtype is RRType.NS
            and r.rname != self.zone.origin
            and name.is_subdomain_of(r.rname)
        ]
        if not cuts:
            return None
        return min(cuts, key=len)

    def _closest_encloser_depth(self, name: DnsName) -> int:
        best = 0
        target = name.reversed_labels
        for record in self.records:
            other = record.rname.reversed_labels
            depth = 0
            for a, b in zip(target, other):
                if a != b:
                    break
                depth += 1
            best = max(best, depth)
        return best

    def _wildcard_sources(self, name: DnsName, ce_depth: int) -> List[ResourceRecord]:
        target = name.reversed_labels
        out = []
        for record in self.records:
            labels = record.rname.reversed_labels
            if (
                len(labels) == ce_depth + 1
                and labels[-1] == "*"
                and labels[:ce_depth] == target[:ce_depth]
            ):
                out.append(record)
        return out

    # -- response construction ------------------------------------------------

    def _add_glue(self, target: DnsName) -> None:
        if not target.is_subdomain_of(self.zone.origin):
            return
        for rtype in (RRType.A, RRType.AAAA):
            for record in self._at(target):
                if record.rtype is rtype:
                    self.additional.append(record)

    def _referral(self, cut: DnsName, at_top: bool) -> None:
        if at_top:
            self.aa = False
        ns_records = [r for r in self._at(cut) if r.rtype is RRType.NS]
        self.authority.extend(ns_records)
        for record in ns_records:
            self._add_glue(record.rdata.names()[0])

    def _append_soa(self) -> None:
        for record in self._at(self.zone.origin):
            if record.rtype is RRType.SOA:
                self.authority.append(record)

    def _glue_for_answers(self, base: int) -> None:
        for record in self.answer[base:]:
            if record.rtype in (RRType.NS, RRType.MX, RRType.SRV):
                self._add_glue(record.rdata.names()[0])

    # -- main recursion ----------------------------------------------------------

    def lookup(self, sname: DnsName, qtype: RRType, depth: int) -> None:
        cut = self._cut(sname)
        if cut is not None:
            self._referral(cut, at_top=depth == 0)
            return

        if self._exists_at(sname):
            records = self._at(sname)
            alias = next((r for r in records if r.rtype is RRType.ALIAS), None)
            if alias is not None and qtype in (RRType.A, RRType.AAAA):
                # v4.0 ALIAS flattening: target's records, owner rewritten.
                self.aa = True
                target = alias.rdata.names()[0]
                matched = []
                if target.is_subdomain_of(self.zone.origin):
                    matched = [
                        r.with_rname(sname)
                        for r in self._at(target)
                        if r.rtype is qtype
                    ]
                self.answer.extend(matched)
                if not matched:
                    self._append_soa()
                return
            cname = next((r for r in records if r.rtype is RRType.CNAME), None)
            if cname is not None and qtype not in (RRType.CNAME, RRType.ANY):
                self.aa = True
                self.answer.append(cname)
                target = cname.rdata.names()[0]
                if depth < MAX_CHASE and target.is_subdomain_of(self.zone.origin):
                    self.lookup(target, qtype, depth + 1)
                return
            base = len(self.answer)
            matched = [
                r for r in records if r.rtype is qtype or qtype is RRType.ANY
            ]
            self.answer.extend(matched)
            self.aa = True
            if not matched:
                self._append_soa()
            else:
                self._glue_for_answers(base)
            return

        if self._exists_below(sname):
            self.aa = True
            self._append_soa()
            return

        ce_depth = self._closest_encloser_depth(sname)
        sources = self._wildcard_sources(sname, ce_depth)
        if sources:
            cname = next((r for r in sources if r.rtype is RRType.CNAME), None)
            if cname is not None and qtype not in (RRType.CNAME, RRType.ANY):
                self.aa = True
                self.answer.append(cname.with_rname(sname))
                target = cname.rdata.names()[0]
                if depth < MAX_CHASE and target.is_subdomain_of(self.zone.origin):
                    self.lookup(target, qtype, depth + 1)
                return
            base = len(self.answer)
            matched = [
                r.with_rname(sname)
                for r in sources
                if r.rtype is qtype or qtype is RRType.ANY
            ]
            self.answer.extend(matched)
            self.aa = True
            if not matched:
                self._append_soa()
            else:
                self._glue_for_answers(base)
            return

        self.rcode = RCode.NXDOMAIN
        self.aa = True
        self._append_soa()

    def finish(self, query: Query, rcode: RCode, aa: bool) -> Response:
        return Response(
            query=query,
            rcode=rcode,
            aa=aa,
            answer=tuple(self.answer),
            authority=tuple(self.authority),
            additional=tuple(self.additional),
        )

"""The top-level specification of DNS authoritative resolution (GoPy).

Figure 9 of the paper: where the production engine traverses a domain tree
with flags and stacks, the specification groups all zone resource records
in a flat list and resolves by iterative filtering. Behaviour follows the
RFCs the paper cites (1034 resolution, 2308 negative answers, 4592
wildcards) plus the additional-section conventions the engine implements:

- out-of-bailiwick queries are REFUSED;
- queries at or below a delegation cut get a non-authoritative referral
  (cut NS records in authority, their in-zone A/AAAA glue in additional);
- existing names answer matching records (all records for ANY), chase
  in-zone CNAME targets up to MAX_CHASE links, and fall back to NODATA
  (SOA in authority) when the type is absent;
- empty non-terminals answer NODATA — they block wildcards (RFC 4592);
- otherwise the closest encloser's wildcard child, if any, synthesizes
  records carrying the query name; absent that, NXDOMAIN with SOA.

``rrlookup(zone, query)`` is exactly the SCALE-style formalisation the
paper builds on (section 6.1).
"""

from repro.engine.gopy.consts import (
    MAX_CHASE,
    TYPE_ALIAS,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    TYPE_A,
    TYPE_AAAA,
    TYPE_ANY,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NS,
    TYPE_SOA,
    TYPE_SRV,
    WILDCARD_LABEL,
)
from repro.engine.gopy.nameops import is_prefix, name_equal, shared_prefix_len
from repro.engine.gopy.respops import resp_set_aa, resp_set_rcode
from repro.engine.gopy.structs import FlatZone, Response, RR


def spec_exists_at(z: FlatZone, sname: list[int]) -> bool:
    """Some record owns exactly this name."""
    for rr in z.rrs:
        if name_equal(rr.rname, sname):
            return True
    return False


def spec_exists_strictly_below(z: FlatZone, sname: list[int]) -> bool:
    """The name is an empty non-terminal: records exist strictly under it."""
    for rr in z.rrs:
        if len(rr.rname) > len(sname) and is_prefix(sname, rr.rname):
            return True
    return False


def spec_find_cut_depth(z: FlatZone, sname: list[int]) -> int:
    """Length of the shallowest delegation owner at-or-above ``sname``
    (0 when the name is not at or below any cut)."""
    best = 0
    for rr in z.rrs:
        if rr.rtype == TYPE_NS and not name_equal(rr.rname, z.origin):
            if is_prefix(rr.rname, sname):
                if best == 0 or len(rr.rname) < best:
                    best = len(rr.rname)
    return best


def spec_ce_depth(z: FlatZone, sname: list[int]) -> int:
    """Closest-encloser depth: deepest existing node on ``sname``'s path
    (every prefix of a record owner is an existing node)."""
    best = 0
    for rr in z.rrs:
        d = shared_prefix_len(sname, rr.rname)
        if d > best:
            best = d
    return best


def spec_add_glue(z: FlatZone, target: list[int], resp: Response) -> None:
    """In-zone A then AAAA records of ``target`` into additional."""
    if not is_prefix(z.origin, target):
        return
    for rr in z.rrs:
        if rr.rtype == TYPE_A and name_equal(rr.rname, target):
            resp.additional.append(rr)
    for rr in z.rrs:
        if rr.rtype == TYPE_AAAA and name_equal(rr.rname, target):
            resp.additional.append(rr)


def spec_referral(z: FlatZone, sname: list[int], cut_len: int, resp: Response) -> None:
    """Non-authoritative referral at the cut of length ``cut_len``; the
    top-level caller clears the AA bit first (no control flag)."""
    for rr in z.rrs:
        if rr.rtype == TYPE_NS and len(rr.rname) == cut_len:
            if is_prefix(rr.rname, sname):
                resp.authority.append(rr)
    for rr in z.rrs:
        if rr.rtype == TYPE_NS and len(rr.rname) == cut_len:
            if is_prefix(rr.rname, sname):
                spec_add_glue(z, rr.rdata_name, resp)


def spec_append_soa(z: FlatZone, resp: Response) -> None:
    for rr in z.rrs:
        if rr.rtype == TYPE_SOA and name_equal(rr.rname, z.origin):
            resp.authority.append(rr)


def spec_get_alias(z: FlatZone, sname: list[int]) -> RR:
    """The (single, validated) ALIAS record at ``sname``, if any —
    specification support for the v4.0 apex-flattening feature."""
    for rr in z.rrs:
        if rr.rtype == TYPE_ALIAS and name_equal(rr.rname, sname):
            return rr
    return None


def spec_flatten_alias(z: FlatZone, alias: RR, sname: list[int], qtype: int, resp: Response) -> None:
    """Answer an A/AAAA query at an aliased name with the target's
    in-zone records, owners rewritten to the query name (flattening)."""
    resp_set_aa(resp, True)
    count = 0
    if is_prefix(z.origin, alias.rdata_name):
        for rr in z.rrs:
            if rr.rtype == qtype and name_equal(rr.rname, alias.rdata_name):
                resp.answer.append(spec_synth(rr, sname))
                count = count + 1
    if count == 0:
        spec_append_soa(z, resp)


def spec_get_cname(z: FlatZone, sname: list[int]) -> RR:
    for rr in z.rrs:
        if rr.rtype == TYPE_CNAME and name_equal(rr.rname, sname):
            return rr
    return None


def spec_append_matching(z: FlatZone, sname: list[int], qtype: int, resp: Response) -> int:
    count = 0
    for rr in z.rrs:
        if name_equal(rr.rname, sname):
            if rr.rtype == qtype or qtype == TYPE_ANY:
                resp.answer.append(rr)
                count = count + 1
    return count


def spec_glue_for_answers(z: FlatZone, resp: Response, base: int) -> None:
    """Additional-section processing over answers appended at >= base."""
    i = base
    while i < len(resp.answer):
        rr = resp.answer[i]
        if rr.rtype == TYPE_NS or rr.rtype == TYPE_MX or rr.rtype == TYPE_SRV:
            spec_add_glue(z, rr.rdata_name, resp)
        i = i + 1


def spec_synth(rr: RR, sname: list[int]) -> RR:
    """RFC 4592 synthesis: the wildcard record with the query name."""
    return RR(rname=sname, rtype=rr.rtype, rdata_id=rr.rdata_id, rdata_name=rr.rdata_name)


def spec_is_wildcard_source(rr: RR, sname: list[int], ce: int) -> bool:
    """Is ``rr`` owned by ``*.<closest encloser of sname>``?"""
    if len(rr.rname) != ce + 1:
        return False
    if rr.rname[ce] != WILDCARD_LABEL:
        return False
    return shared_prefix_len(rr.rname, sname) == ce


def spec_lookup(z: FlatZone, sname: list[int], qtype: int, resp: Response, depth: int) -> None:
    """Resolve ``sname`` (the original qname at depth 0, chased CNAME
    targets deeper), accumulating into ``resp``."""
    cut_len = spec_find_cut_depth(z, sname)
    if cut_len != 0:
        if depth == 0:
            resp_set_aa(resp, False)
        spec_referral(z, sname, cut_len, resp)
        return

    if spec_exists_at(z, sname):
        alias = spec_get_alias(z, sname)
        if alias is not None and (qtype == TYPE_A or qtype == TYPE_AAAA):
            spec_flatten_alias(z, alias, sname, qtype, resp)
            return
        cname = spec_get_cname(z, sname)
        if cname is not None and qtype != TYPE_CNAME and qtype != TYPE_ANY:
            resp_set_aa(resp, True)
            resp.answer.append(cname)
            if depth < MAX_CHASE and is_prefix(z.origin, cname.rdata_name):
                spec_lookup(z, cname.rdata_name, qtype, resp, depth + 1)
            return
        base = len(resp.answer)
        count = spec_append_matching(z, sname, qtype, resp)
        resp_set_aa(resp, True)
        if count == 0:
            spec_append_soa(z, resp)
        else:
            spec_glue_for_answers(z, resp, base)
        return

    if spec_exists_strictly_below(z, sname):
        # Empty non-terminal: NODATA, and it blocks wildcards (RFC 4592).
        resp_set_aa(resp, True)
        spec_append_soa(z, resp)
        return

    ce = spec_ce_depth(z, sname)
    wexists = False
    wcname: RR = None
    for rr in z.rrs:
        if spec_is_wildcard_source(rr, sname, ce):
            wexists = True
            if rr.rtype == TYPE_CNAME:
                wcname = rr
    if wexists:
        if wcname is not None and qtype != TYPE_CNAME and qtype != TYPE_ANY:
            resp_set_aa(resp, True)
            resp.answer.append(spec_synth(wcname, sname))
            if depth < MAX_CHASE and is_prefix(z.origin, wcname.rdata_name):
                spec_lookup(z, wcname.rdata_name, qtype, resp, depth + 1)
            return
        base = len(resp.answer)
        wcount = 0
        for rr in z.rrs:
            if spec_is_wildcard_source(rr, sname, ce):
                if rr.rtype == qtype or qtype == TYPE_ANY:
                    resp.answer.append(spec_synth(rr, sname))
                    wcount = wcount + 1
        resp_set_aa(resp, True)
        if wcount == 0:
            spec_append_soa(z, resp)
        else:
            spec_glue_for_answers(z, resp, base)
        return

    resp_set_rcode(resp, RCODE_NXDOMAIN)
    resp_set_aa(resp, True)
    spec_append_soa(z, resp)


def rrlookup(z: FlatZone, q: list[int], qtype: int, resp: Response) -> None:
    """The whole-program specification: ``response = rrlookup(zone, query)``."""
    resp_set_rcode(resp, RCODE_NOERROR)
    resp_set_aa(resp, False)
    if not is_prefix(z.origin, q):
        resp_set_rcode(resp, RCODE_REFUSED)
        return
    spec_lookup(z, q, qtype, resp, 0)

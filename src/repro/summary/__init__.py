"""Automated specification summarization (paper sections 5.3 and 6.4).

A summary is the machine-generated stand-in for a manual specification:
full-path symbolic execution of a module collects, per path ``k``, the path
condition ``θ'_k`` and the computation effects ``f'_k`` (field writes, list
appends, fresh allocations, the return value), expressed over symbolic
inputs that follow a naming convention tied to the parameters. The
aggregated set of input–effect pairs *is* the module's summary
specification, and higher layers invoke it instead of the code.

Summaries here are computed against a concrete in-heap domain tree and the
global symbolic query (section 6.5), which is what makes them finite and
directly composable: conditions mention the very same query variables the
top-level verification uses.
"""

from repro.summary.effects import (
    Effect,
    FieldWrite,
    ListAppend,
    NewObject,
    NewTag,
    UnsupportedEffectError,
)
from repro.summary.params import (
    ParamSpec,
    SymbolicInt,
    SymbolicBool,
    FixedValue,
    ResultStruct,
)
from repro.summary.summarize import Summary, SummaryCase, summarize

__all__ = [
    "Effect",
    "FieldWrite",
    "ListAppend",
    "NewObject",
    "NewTag",
    "UnsupportedEffectError",
    "ParamSpec",
    "SymbolicInt",
    "SymbolicBool",
    "FixedValue",
    "ResultStruct",
    "Summary",
    "SummaryCase",
    "summarize",
]

"""Computation-effect representation (section 5.3).

The paper observes that resolution modules update the heap in exactly three
ways, and builds the summary vocabulary from them:

- **updating specific fields in a struct** — :class:`FieldWrite`;
- **appending to an array** (store at the running index, then bump it) —
  :class:`ListAppend`;
- **allocating a new struct and populating each field** (wildcard-match RR
  copies) — :class:`NewObject`, the summary's ``newobject`` builtin.

Effect values are solver expressions over the summary's symbolic inputs,
concrete pointers into the shared heap, or :class:`NewTag` references to
objects the same case allocates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class UnsupportedEffectError(RuntimeError):
    """The module's writes fall outside the summarizable patterns."""


@dataclass(frozen=True)
class NewTag:
    """Reference to the ``index``-th object allocated by a summary case."""

    index: int

    def __repr__(self):
        return f"new#{self.index}"


class Effect:
    """Base class of summary effects."""


@dataclass(frozen=True)
class FieldWrite(Effect):
    """``param.field := value``. ``param`` is a parameter position; the
    field is identified LLVM-style by index (``field_name`` is cosmetic)."""

    param: int
    field_index: int
    field_name: str
    value: object

    def __repr__(self):
        return f"arg{self.param}.{self.field_name} := {self.value!r}"


@dataclass(frozen=True)
class ListAppend(Effect):
    """``append(param.field, value)``; ``field_index`` is None when the
    parameter itself is the list."""

    param: int
    field_index: Optional[int]
    field_name: str
    value: object

    def __repr__(self):
        target = f"arg{self.param}" + (f".{self.field_name}" if self.field_name else "")
        return f"append({target}, {self.value!r})"


@dataclass(frozen=True)
class NewObject(Effect):
    """``new#tag = newobject <struct>{field values}``. List-typed fields are
    given as tuples of element values."""

    tag: NewTag
    struct_name: str
    field_values: Tuple

    def __repr__(self):
        inner = ", ".join(repr(v) for v in self.field_values)
        return f"{self.tag!r} = newobject {self.struct_name}{{{inner}}}"

"""Parameter setup for summarization.

Section 5.3: "Inputs for invoking a module include immediate symbolic values
for parameters, and symbolic values that are pointed to by parameter
pointers. We rely on a consistent naming convention to associate symbolic
values with parameters." These classes are that convention:

- :class:`SymbolicInt` / :class:`SymbolicBool` — an immediate symbolic
  scalar named ``<function>.<param>``;
- :class:`FixedValue` — a concrete value shared with the enclosing
  verification run (the domain-tree pointer, the global query list);
- :class:`ResultStruct` — a result-holder struct: scalar fields become
  symbolic variables named ``<function>.<param>.<field>`` (substituted with
  the caller's live field values at application time), list fields start
  empty so that every append the module performs is visible as an effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ParamSpec:
    """Base class for parameter setups."""


@dataclass(frozen=True)
class SymbolicInt(ParamSpec):
    """Fresh symbolic integer input; optional explicit variable name."""

    name: Optional[str] = None


@dataclass(frozen=True)
class SymbolicBool(ParamSpec):
    """Fresh symbolic boolean input (control flags, section 6.4)."""

    name: Optional[str] = None


@dataclass(frozen=True)
class FixedValue(ParamSpec):
    """A concrete executor value (pointer into the shared heap, or any
    scalar) passed through unchanged; the caller must pass the same value
    when the summary is applied."""

    value: object


@dataclass(frozen=True)
class ResultStruct(ParamSpec):
    """A result-holder parameter of the given struct type."""

    struct_name: str

"""Summary computation and application.

``summarize()`` runs full-path symbolic execution of one module against the
shared concrete heap and converts every explored path into a
:class:`SummaryCase` — the ``{ f'_k(s'_0) if θ'_k(s'_0) }`` set of
section 5.3. The resulting :class:`Summary` plugs into the executor's call
dispatch (via :class:`~repro.symex.bindings.SummaryBinding`), so verifying a
higher layer never re-executes the summarized code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.types import BoolType, IntType, ListType, PointerType
from repro.solver import SolveResult
from repro.solver.terms import (
    BoolExpr,
    IntExpr,
    and_,
    bfalse,
    bvar,
    ivar,
    substitute,
)
from repro.summary.effects import (
    Effect,
    FieldWrite,
    ListAppend,
    NewObject,
    NewTag,
    UnsupportedEffectError,
)
from repro.summary.params import (
    FixedValue,
    ParamSpec,
    ResultStruct,
    SymbolicBool,
    SymbolicInt,
)
from repro.symex.errors import SymexError
from repro.symex.executor import Executor, Outcome, PanicInfo
from repro.symex.state import PathState
from repro.symex.values import ListVal, NULL, Pointer, StructVal


@dataclass(frozen=True)
class SummaryCase:
    """One input–effect pair: condition over symbolic inputs, ordered
    effects, the return value (or a panic)."""

    condition: BoolExpr
    effects: Tuple[Effect, ...]
    ret: object = None
    panic: Optional[PanicInfo] = None

    def describe(self) -> str:
        lines = [f"if {self.condition!r}:"]
        if self.panic is not None:
            lines.append(f"    {self.panic}")
            return "\n".join(lines)
        for effect in self.effects:
            lines.append(f"    {effect!r}")
        if self.ret is not None:
            lines.append(f"    return {self.ret!r}")
        if len(lines) == 1:
            lines.append("    skip")
        return "\n".join(lines)


@dataclass
class _ResultParamInfo:
    struct_name: str
    block_id: int
    scalar_fields: List[Tuple[int, str, str]] = field(default_factory=list)
    # (field_index, field_name, symbol_name)
    list_fields: List[Tuple[int, str, int]] = field(default_factory=list)
    # (field_index, field_name, summary-time list block id)
    field_names: Tuple[str, ...] = ()


class Summary:
    """A summary specification, applicable at call sites.

    Cases are mutually exclusive by construction (they are distinct paths of
    one execution), so application forks the caller's state into exactly the
    feasible cases.
    """

    def __init__(
        self,
        name: str,
        param_specs: Sequence[ParamSpec],
        param_symbols: List,
        cases: List[SummaryCase],
        elapsed_seconds: float,
        paths_explored: int,
    ):
        self.name = name
        self.param_specs = tuple(param_specs)
        self.param_symbols = param_symbols
        self.cases = cases
        self.elapsed_seconds = elapsed_seconds
        self.paths_explored = paths_explored

    def __len__(self) -> int:
        return len(self.cases)

    def describe(self) -> str:
        header = (
            f"summary_spec {self.name}: {len(self.cases)} cases "
            f"({self.paths_explored} paths, {self.elapsed_seconds:.2f}s)"
        )
        return "\n\n".join([header] + [case.describe() for case in self.cases])

    # -- application at a call site ------------------------------------------

    def apply(self, executor: Executor, state: PathState, args) -> List[Outcome]:
        if len(args) != len(self.param_specs):
            raise SymexError(
                f"summary {self.name} expects {len(self.param_specs)} args, "
                f"got {len(args)}"
            )
        subst: Dict[str, object] = {}
        block_map: Dict[int, int] = {}
        for index, (spec, info) in enumerate(zip(self.param_specs, self.param_symbols)):
            actual = args[index]
            if isinstance(spec, (SymbolicInt, SymbolicBool)):
                subst[info] = actual
            elif isinstance(spec, FixedValue):
                if actual != spec.value:
                    raise SymexError(
                        f"summary {self.name}: argument {index} differs from the "
                        f"fixed value it was summarized with"
                    )
            elif isinstance(spec, ResultStruct):
                pointer = _expect_struct_ptr(actual, self.name, index)
                content = state.memory.content(pointer.block_id)
                if not isinstance(content, StructVal):
                    raise SymexError(
                        f"summary {self.name}: argument {index} is not a struct"
                    )
                block_map[info.block_id] = pointer.block_id
                for field_index, _, symbol in info.scalar_fields:
                    subst[symbol] = content.fields[field_index]
                for field_index, _, list_block in info.list_fields:
                    actual_list = content.fields[field_index]
                    lp = _expect_struct_ptr(actual_list, self.name, index)
                    block_map[list_block] = lp.block_id
            else:
                raise SymexError(f"unknown param spec {spec!r}")

        outcomes: List[Outcome] = []
        for case in self.cases:
            condition = substitute(case.condition, subst)
            if condition == bfalse():
                continue
            if executor.solver.check(*(state.pc + [condition])) is SolveResult.UNSAT:
                continue
            branch = state.fork()
            branch.assume(condition)
            branch.witness = None  # witness may not satisfy the new condition
            if case.panic is not None:
                outcomes.append(Outcome(branch, None, case.panic))
                continue
            tag_blocks: Dict[int, Pointer] = {}

            def convert(value):
                if isinstance(value, (IntExpr, BoolExpr)):
                    return substitute(value, subst)
                if isinstance(value, NewTag):
                    return tag_blocks[value.index]
                if isinstance(value, Pointer):
                    if not value.is_null and value.block_id in block_map:
                        return Pointer(block_map[value.block_id], value.path)
                    return value
                return value

            for effect in case.effects:
                if isinstance(effect, NewObject):
                    values = tuple(convert(v) for v in effect.field_values)
                    if effect.struct_name == "__list__":
                        content = ListVal.concrete(values)
                    else:
                        content = StructVal(effect.struct_name, values)
                    tag_blocks[effect.tag.index] = branch.memory.alloc(content)
                elif isinstance(effect, FieldWrite):
                    target = _expect_struct_ptr(args[effect.param], self.name, effect.param)
                    branch.memory.store(
                        target.child(effect.field_index), convert(effect.value)
                    )
                elif isinstance(effect, ListAppend):
                    base = _expect_struct_ptr(args[effect.param], self.name, effect.param)
                    if effect.field_index is None:
                        list_ptr = base
                    else:
                        list_ptr = branch.memory.load(base.child(effect.field_index))
                    content = branch.memory.content(list_ptr.block_id)
                    branch.memory.replace(
                        list_ptr.block_id, content.appended(convert(effect.value))
                    )
                else:
                    raise SymexError(f"unknown effect {effect!r}")
            outcomes.append(Outcome(branch, convert(case.ret)))
        return outcomes


def _expect_struct_ptr(value, name, index) -> Pointer:
    if not isinstance(value, Pointer) or value.is_null:
        raise SymexError(f"summary {name}: argument {index} must be a non-nil pointer")
    return value


# ---------------------------------------------------------------------------
# Summarization
# ---------------------------------------------------------------------------


def summarize(
    executor: Executor,
    function_name: str,
    param_specs: Sequence[ParamSpec],
    state: Optional[PathState] = None,
    pre: Sequence[BoolExpr] = (),
) -> Summary:
    """Compute the summary specification of ``function_name``.

    ``state`` carries the shared concrete heap (domain tree); ``pre`` the
    global input constraints. The caller's state is not mutated.
    """
    function = executor.lookup_function(function_name)
    if function is None:
        raise SymexError(f"cannot summarize unknown function {function_name!r}")
    if len(param_specs) != len(function.params):
        raise SymexError(
            f"{function_name} has {len(function.params)} params, "
            f"got {len(param_specs)} specs"
        )

    work_state = state.fork() if state is not None else PathState()
    base_pc_len = len(work_state.pc) + len(pre)

    args: List[object] = []
    param_symbols: List[object] = []
    for (pname, ptype), spec in zip(function.params, param_specs):
        if isinstance(spec, SymbolicInt):
            symbol = spec.name or f"{function_name}.{pname}"
            args.append(ivar(symbol))
            param_symbols.append(symbol)
        elif isinstance(spec, SymbolicBool):
            symbol = spec.name or f"{function_name}.{pname}"
            args.append(bvar(symbol))
            param_symbols.append(symbol)
        elif isinstance(spec, FixedValue):
            args.append(spec.value)
            param_symbols.append(None)
        elif isinstance(spec, ResultStruct):
            pointer, info = _make_result_struct(
                executor, work_state, function_name, pname, spec.struct_name
            )
            args.append(pointer)
            param_symbols.append(info)
        else:
            raise SymexError(f"unknown param spec {spec!r}")

    baseline = work_state.memory.snapshot()
    started = time.perf_counter()
    outcomes = executor.run(function_name, args, state=work_state, pre=pre)
    elapsed = time.perf_counter() - started

    tracked_lists = set()
    for info in param_symbols:
        if isinstance(info, _ResultParamInfo):
            tracked_lists.update(lb for _, _, lb in info.list_fields)

    cases = [
        _extract_case(
            outcome, baseline, param_symbols, base_pc_len, tracked_lists
        )
        for outcome in outcomes
    ]
    return Summary(
        function_name, param_specs, param_symbols, cases, elapsed, len(outcomes)
    )


def _make_result_struct(
    executor: Executor, state: PathState, function_name: str, pname: str, struct_name: str
):
    struct = executor.registry.get(struct_name)
    info = _ResultParamInfo(
        struct_name, -1, field_names=tuple(name for name, _ in struct.fields)
    )
    fields = []
    for field_index, (field_name, field_type) in enumerate(struct.fields):
        if isinstance(field_type, IntType):
            symbol = f"{function_name}.{pname}.{field_name}"
            fields.append(ivar(symbol))
            info.scalar_fields.append((field_index, field_name, symbol))
        elif isinstance(field_type, BoolType):
            symbol = f"{function_name}.{pname}.{field_name}"
            fields.append(bvar(symbol))
            info.scalar_fields.append((field_index, field_name, symbol))
        elif isinstance(field_type, PointerType) and isinstance(
            field_type.pointee, ListType
        ):
            pointer = state.memory.alloc(ListVal.concrete(()))
            fields.append(pointer)
            info.list_fields.append((field_index, field_name, pointer.block_id))
        elif isinstance(field_type, PointerType):
            fields.append(NULL)  # write-only pointer fields start nil
        else:
            raise SymexError(
                f"unsupported result field type {field_type!r} in {struct_name}"
            )
    pointer = state.memory.alloc(StructVal(struct_name, tuple(fields)))
    info.block_id = pointer.block_id
    return pointer, info


def _extract_case(
    outcome: Outcome,
    baseline: Dict[int, object],
    param_symbols,
    base_pc_len: int,
    tracked_lists,
) -> SummaryCase:
    condition = and_(*outcome.state.pc[base_pc_len:])
    if outcome.is_panic:
        return SummaryCase(condition, (), None, outcome.panic)

    final = outcome.state.memory
    effects: List[Effect] = []
    new_tags: Dict[int, NewTag] = {}

    def convert(value):
        if isinstance(value, Pointer) and not value.is_null:
            if value.block_id not in baseline:
                return _tag_new_block(value.block_id)
        return value

    def _tag_new_block(block_id: int) -> NewTag:
        if block_id in new_tags:
            return new_tags[block_id]
        tag = NewTag(len(new_tags))
        new_tags[block_id] = tag
        content = final.content(block_id)
        if isinstance(content, StructVal):
            values = tuple(convert(v) for v in content.fields)
            effects.append(NewObject(tag, content.type_name, values))
        elif isinstance(content, ListVal):
            if not content.has_concrete_length:
                raise UnsupportedEffectError(
                    "new list with symbolic length cannot be summarized"
                )
            values = tuple(convert(v) for v in content.items)
            effects.append(NewObject(tag, "__list__", values))
        else:
            raise UnsupportedEffectError(
                f"escaping scalar allocation b{block_id} cannot be summarized"
            )
        return tag

    allowed_writes = set(tracked_lists)
    for info in param_symbols:
        if isinstance(info, _ResultParamInfo):
            allowed_writes.add(info.block_id)

    for param_index, info in enumerate(param_symbols):
        if not isinstance(info, _ResultParamInfo):
            continue
        base_content = baseline[info.block_id]
        final_content = final.content(info.block_id)
        for field_index, (base_value, final_value) in enumerate(
            zip(base_content.fields, final_content.fields)
        ):
            if base_value is final_value or base_value == final_value:
                continue
            field_name = _field_name(info, field_index)
            effects.append(
                FieldWrite(param_index, field_index, field_name, convert(final_value))
            )
        for field_index, field_name, list_block in info.list_fields:
            base_list = baseline[list_block]
            final_list = final.content(list_block)
            if len(final_list.items) < len(base_list.items) or (
                final_list.items[: len(base_list.items)] != base_list.items
            ):
                raise UnsupportedEffectError(
                    f"{field_name}: result list mutated beyond appends"
                )
            for item in final_list.items[len(base_list.items):]:
                effects.append(
                    ListAppend(param_index, field_index, field_name, convert(item))
                )

    # No other pre-existing block may have changed (section 9: modules incur
    # no persistent modifications outside their result holders).
    for block_id, content in final.snapshot().items():
        if block_id in baseline and block_id not in allowed_writes:
            if baseline[block_id] is not content:
                raise UnsupportedEffectError(
                    f"write to non-result block b{block_id} cannot be summarized"
                )

    ret = convert(outcome.value) if outcome.value is not None else None
    return SummaryCase(condition, tuple(effects), ret, None)


def _field_name(info: _ResultParamInfo, field_index: int) -> str:
    if field_index < len(info.field_names):
        return info.field_names[field_index]
    return f"f{field_index}"

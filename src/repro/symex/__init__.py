"""Full-path symbolic execution over AbsLLVM.

Implements sections 5.1–5.2 of the paper:

- the **flexible memory model**: memory is a map from block ids to contents;
  a block holds a scalar slot, a struct, or an abstract list whose fields
  and elements may independently be concrete or symbolic — this is what
  permits *partial abstraction* of poorly encapsulated data structures;
- **full-path exploration**: every branch on a symbolic condition forks the
  path after the solver confirms feasibility of each side, so the final set
  of paths covers all behaviours; loops terminate because the concrete
  domain tree is finite and symbolic loop bounds are boxed by global
  constraints (section 6.5);
- **layer dispatch**: calls resolve to concrete IR, to a manual abstract
  specification (itself IR), to an automatically generated summary, or to
  a native intrinsic — the mechanism behind layered verification
  (section 4.3);
- **panic reachability**: a path ending at a panic terminator is returned
  as a panic outcome; the safety property holds iff no such outcome exists.
"""

from repro.symex.errors import SymexError, OutOfBudgetError
from repro.symex.values import (
    Pointer,
    NULL,
    StructVal,
    ListVal,
    UNINIT,
    is_concrete_int,
    concrete_int,
)
from repro.symex.memory import Memory
from repro.symex.state import PathState
from repro.symex.heap import HeapLoader, concretize_value
from repro.symex.bindings import Bindings, IRBinding, SummaryBinding, NativeBinding
from repro.symex.executor import Executor, Outcome, PanicInfo, ExecutionStats

__all__ = [
    "SymexError",
    "OutOfBudgetError",
    "Pointer",
    "NULL",
    "StructVal",
    "ListVal",
    "UNINIT",
    "is_concrete_int",
    "concrete_int",
    "Memory",
    "PathState",
    "HeapLoader",
    "concretize_value",
    "Bindings",
    "IRBinding",
    "SummaryBinding",
    "NativeBinding",
    "Executor",
    "Outcome",
    "PanicInfo",
    "ExecutionStats",
]

"""Call-site bindings: how a callee name resolves during execution.

This is the mechanism of layered verification (section 4.3): when the
executor meets ``call f(...)`` it consults the bindings first, so a lower
layer's concrete code can be replaced by its manual abstract specification
(an :class:`IRBinding` to a spec function), by an automatically generated
summary (:class:`SummaryBinding`), or by a native Python helper
(:class:`NativeBinding`, used for built-in predicates of section 6.1).
Unbound names fall through to the concrete IR modules — i.e. get inlined.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class Binding:
    """Base class; see subclasses."""


class IRBinding(Binding):
    """Execute a different IR function (typically a manual specification)
    in place of the callee."""

    def __init__(self, function):
        self.function = function

    def __repr__(self):
        return f"IRBinding({self.function.name})"


class SummaryBinding(Binding):
    """Apply a summary specification: the object must expose
    ``apply(executor, state, args) -> List[Outcome]`` (provided by
    :class:`repro.summary.Summary`)."""

    def __init__(self, summary):
        self.summary = summary

    def __repr__(self):
        return f"SummaryBinding({getattr(self.summary, 'name', '?')})"


class NativeBinding(Binding):
    """A Python-implemented callee: ``fn(executor, state, args)`` returning
    a list of Outcomes."""

    def __init__(self, fn: Callable, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "native")

    def __repr__(self):
        return f"NativeBinding({self.name})"


class Bindings:
    """Name -> binding table with layering-friendly copy semantics."""

    def __init__(self, initial: Optional[Dict[str, Binding]] = None):
        self._map: Dict[str, Binding] = dict(initial or {})

    def bind(self, name: str, binding: Binding) -> None:
        self._map[name] = binding

    def bind_spec(self, name: str, spec_function) -> None:
        self.bind(name, IRBinding(spec_function))

    def bind_summary(self, name: str, summary) -> None:
        self.bind(name, SummaryBinding(summary))

    def bind_native(self, name: str, fn: Callable) -> None:
        self.bind(name, NativeBinding(fn, name))

    def lookup(self, name: str) -> Optional[Binding]:
        return self._map.get(name)

    def copy(self) -> "Bindings":
        return Bindings(self._map)

    def names(self):
        return list(self._map)

    def __contains__(self, name: str) -> bool:
        return name in self._map

    def __repr__(self):
        return f"Bindings({sorted(self._map)})"

"""Symbolic-execution diagnostics."""

from __future__ import annotations


class SymexError(RuntimeError):
    """An internal executor invariant failed (distinct from a *target*
    panic, which is a verification result, not an error)."""


class OutOfBudgetError(SymexError):
    """Path or step budget exhausted; results would be incomplete."""

"""The AbsLLVM symbolic executor.

Interprets IR functions over :class:`~repro.symex.state.PathState`, forking
on symbolic branches after solver feasibility checks, and returning one
:class:`Outcome` per explored path — either a normal return (value + final
state) or a reached panic block. Calls dispatch through
:class:`~repro.symex.bindings.Bindings` so any layer can run against its
dependencies' specifications or summaries instead of their code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ir import (
    Alloca,
    BinOp,
    Br,
    Call,
    CondBr,
    ConstBool,
    ConstInt,
    ConstNull,
    ElidedGuardBr,
    Function,
    GEP,
    ICmp,
    ListType,
    Load,
    Module,
    NamedType,
    Panic,
    PointerType,
    Register,
    Ret,
    Store,
    StructType,
)
from repro.ir.types import TypeRegistry
from repro.solver import Solver, SolveResult
from repro.solver.terms import (
    BoolExpr,
    IntExpr,
    NonLinearError,
    and_,
    beq,
    bool_const,
    eq,
    ge,
    gt,
    iadd,
    iconst,
    imul,
    isub,
    le,
    lt,
    ne,
    not_,
    or_,
)
from repro.symex.bindings import Bindings, IRBinding, NativeBinding, SummaryBinding
from repro.symex.errors import OutOfBudgetError, SymexError
from repro.symex.state import PathState
from repro.symex.values import (
    ListVal,
    NULL,
    Pointer,
    StructVal,
    UNINIT,
)


@dataclass(frozen=True)
class PanicInfo:
    """A reached panic block — a safety counterexample candidate."""

    kind: str
    message: str
    function: str

    def __str__(self):
        return f"panic[{self.kind}] in {self.function}: {self.message}"


@dataclass
class Outcome:
    """One fully explored path."""

    state: PathState
    value: object = None
    panic: Optional[PanicInfo] = None

    @property
    def is_panic(self) -> bool:
        return self.panic is not None


@dataclass
class ExecutionStats:
    steps: int = 0
    forks: int = 0
    calls: int = 0
    paths: int = 0
    solver_checks: int = 0
    #: Solver feasibility checks spent on panic-guard branches (a guard =
    #: a CondBr with a Panic successor). The denominator of the pruning
    #: pass's discharge ratio.
    panic_guard_checks: int = 0
    #: Times execution crossed an ElidedGuardBr whose condition was
    #: symbolic (i.e. the unpruned run would have consulted the solver).
    pruned_guard_hits: int = 0
    #: Solver checks those crossings would have cost (1 when a path
    #: witness would have decided one side for free, else 2).
    pruned_checks_avoided: int = 0
    #: Per-function breakdowns of the two counters above, keyed by the
    #: function the guard sits in — what makes a discharge regression
    #: attributable instead of a bare module total.
    guard_checks_by_function: Dict[str, int] = field(default_factory=dict)
    pruned_hits_by_function: Dict[str, int] = field(default_factory=dict)


class Executor:
    """Full-path symbolic executor over a set of IR modules.

    ``modules`` are searched in order for concrete callee code; ``bindings``
    take precedence over modules (that's how specs/summaries replace code).
    One executor instance is reusable across runs; statistics accumulate.
    """

    def __init__(
        self,
        modules: Sequence[Module],
        bindings: Optional[Bindings] = None,
        solver: Optional[Solver] = None,
        max_paths: int = 60000,
        max_steps: int = 5_000_000,
        max_call_depth: int = 128,
        budget=None,
        analysis_check: bool = False,
    ):
        self.modules = list(modules)
        self.bindings = bindings if bindings is not None else Bindings()
        self.solver = solver if solver is not None else Solver(budget=budget)
        self.budget = budget  # Optional[repro.resilience.Budget]
        if budget is not None and self.solver.budget is None:
            self.solver.budget = budget
        self.max_paths = max_paths
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        #: Debug mode: at the first symbolic crossing of each elided guard,
        #: re-ask the solver that the panic side really is infeasible.
        self.analysis_check = analysis_check
        self._checked_sites: set = set()
        self.stats = ExecutionStats()
        self.registry = TypeRegistry()
        for module in self.modules:
            for struct in module.types.structs():
                if struct.name not in self.registry:
                    self.registry.define(struct.name, struct.fields)

    # -- public API -----------------------------------------------------------

    def run(
        self,
        function_name: str,
        args: Sequence[object],
        state: Optional[PathState] = None,
        pre: Sequence[BoolExpr] = (),
    ) -> List[Outcome]:
        """Explore every path of ``function_name`` applied to ``args``.

        ``pre`` is the global precondition (input bounds, section 5.4's
        encoding constraints); infeasible branches under it are pruned.
        """
        if state is None:
            state = PathState()
        for condition in pre:
            state.assume(condition)
        outcomes = self._call(state, function_name, list(args), depth=0)
        self.stats.paths += len(outcomes)
        return outcomes

    def new_object(self, state: PathState, struct_name: str) -> Pointer:
        """Allocate a default-initialised struct block (public helper for
        harnesses that need result holders, e.g. Response blocks)."""
        return self._new_object(state, self.registry.get(struct_name))

    def lookup_function(self, name: str) -> Optional[Function]:
        for module in self.modules:
            if module.has_function(name):
                return module.get_function(name)
        return None

    # -- call dispatch -----------------------------------------------------------

    def _call(self, state: PathState, name: str, args, depth: int) -> List[Outcome]:
        if depth > self.max_call_depth:
            raise OutOfBudgetError(f"call depth above {self.max_call_depth} at {name}")
        self.stats.calls += 1
        binding = self.bindings.lookup(name)
        if binding is not None:
            if isinstance(binding, IRBinding):
                return self._exec_function(state, binding.function, args, depth)
            if isinstance(binding, SummaryBinding):
                return binding.summary.apply(self, state, args)
            if isinstance(binding, NativeBinding):
                return binding.fn(self, state, args)
            raise SymexError(f"unknown binding type for {name!r}")
        function = self.lookup_function(name)
        if function is None:
            raise SymexError(f"no code, spec or summary for callee {name!r}")
        return self._exec_function(state, function, args, depth)

    # -- core interpreter ----------------------------------------------------------

    def _exec_function(
        self, state: PathState, fn: Function, args, depth: int
    ) -> List[Outcome]:
        if len(args) != len(fn.params):
            raise SymexError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        regs: Dict[str, object] = {
            pname: value for (pname, _), value in zip(fn.params, args)
        }
        results: List[Outcome] = []
        work = [(state, regs, fn.entry_label, 0)]
        budget = self.budget

        while work:
            state, regs, label, start = work.pop()
            block = fn.blocks[label]
            insns = block.instructions
            i = start
            diverted = False
            while i < len(insns):
                self.stats.steps += 1
                if self.stats.steps > self.max_steps:
                    raise OutOfBudgetError(f"step budget exhausted in {fn.name}")
                if budget is not None:
                    budget.charge()
                insn = insns[i]
                if isinstance(insn, Call):
                    outcomes = self._do_call(state, regs, insn, depth)
                    if len(outcomes) == 1 and not outcomes[0].is_panic:
                        state = outcomes[0].state
                        if insn.dest is not None:
                            regs[insn.dest.name] = outcomes[0].value
                        i += 1
                        continue
                    for out in outcomes:
                        if out.is_panic:
                            results.append(out)
                        else:
                            new_regs = dict(regs)
                            if insn.dest is not None:
                                new_regs[insn.dest.name] = out.value
                            work.append((out.state, new_regs, label, i + 1))
                            self.stats.forks += 1
                    diverted = True
                    break
                try:
                    self._exec_simple(state, regs, insn)
                except _NeedsConcretization as fork_request:
                    self._fork_on_index(state, regs, label, i, fork_request, work)
                    diverted = True
                    break
                i += 1
            if diverted:
                continue

            term = block.terminator
            if isinstance(term, Ret):
                value = (
                    self._eval(regs, term.value) if term.value is not None else None
                )
                results.append(Outcome(state, value, None))
            elif isinstance(term, Br):
                work.append((state, regs, term.target, 0))
            elif isinstance(term, CondBr):
                cond = self._eval(regs, term.cond)
                then_block = fn.blocks.get(term.then_label)
                else_block = fn.blocks.get(term.else_label)
                if isinstance(
                    then_block.terminator if then_block else None, Panic
                ) or isinstance(
                    else_block.terminator if else_block else None, Panic
                ):
                    before = self.stats.solver_checks
                    self._branch(state, regs, cond, term, work, guard=True)
                    spent = self.stats.solver_checks - before
                    self.stats.panic_guard_checks += spent
                    if spent:
                        by_fn = self.stats.guard_checks_by_function
                        by_fn[fn.name] = by_fn.get(fn.name, 0) + spent
                else:
                    self._branch(state, regs, cond, term, work)
            elif isinstance(term, ElidedGuardBr):
                self._cross_elided_guard(state, regs, term, fn, work, results)
            elif isinstance(term, Panic):
                results.append(
                    Outcome(state, None, PanicInfo(term.kind, term.message, fn.name))
                )
            else:
                raise SymexError(f"{fn.name}: unterminated block {label}")

            if len(results) + len(work) > self.max_paths:
                raise OutOfBudgetError(
                    f"path budget exhausted in {fn.name} "
                    f"({len(results)} results, {len(work)} pending)"
                )
        return results

    def _branch(self, state, regs, cond, term: CondBr, work,
                guard: bool = False) -> None:
        if not isinstance(cond, BoolExpr):
            raise SymexError(f"condition is not boolean: {cond!r}")
        folded = _as_concrete_bool(cond)
        if folded is not None:
            target = term.then_label if folded else term.else_label
            work.append((state, regs, target, 0))
            return
        negated = not_(cond)
        # Witness shortcut: a model satisfying pc decides one side for free
        # (any completion of a partial model is valid, since absent
        # variables are unconstrained by pc).
        witness_says: Optional[bool] = None
        if state.witness is not None:
            witness_says = bool(_eval_with_default(cond, state.witness))
        true_witness = state.witness if witness_says is True else None
        false_witness = state.witness if witness_says is False else None
        if witness_says is True:
            feasible_true = True
            feasible_false, false_witness = self._feasible_with_model(
                state.pc + [negated], guard=guard
            )
        elif witness_says is False:
            feasible_false = True
            feasible_true, true_witness = self._feasible_with_model(
                state.pc + [cond], guard=guard
            )
        else:
            feasible_true, true_witness = self._feasible_with_model(
                state.pc + [cond], guard=guard
            )
            feasible_false, false_witness = self._feasible_with_model(
                state.pc + [negated], guard=guard
            )
        if feasible_true and feasible_false:
            other = state.fork()
            other.assume(negated)
            other.witness = false_witness
            work.append((other, dict(regs), term.else_label, 0))
            state.assume(cond)
            state.witness = true_witness
            work.append((state, regs, term.then_label, 0))
            self.stats.forks += 1
        elif feasible_true:
            state.assume(cond)
            state.witness = true_witness
            work.append((state, regs, term.then_label, 0))
        elif feasible_false:
            state.assume(negated)
            state.witness = false_witness
            work.append((state, regs, term.else_label, 0))
        # both infeasible: dead path (possible when UNKNOWNs were explored).

    def _cross_elided_guard(self, state, regs, term: ElidedGuardBr, fn, work,
                            results):
        """Cross a panic guard the static analysis elided.

        The unpruned executor would solver-check both sides, find the
        panic side infeasible, and continue down the surviving side after
        ``assume``-ing its condition. We skip the checks but still assume
        the identical condition, so the path condition — and everything
        derived from it (verdicts, counterexample models, summaries) —
        stays bit-identical to the unpruned run; only solver-check
        counters differ.
        """
        cond = self._eval(regs, term.cond)
        if not isinstance(cond, BoolExpr):
            raise SymexError(f"condition is not boolean: {cond!r}")
        folded = _as_concrete_bool(cond)
        if folded is not None:
            if folded == term.panic_on_true:
                # The condition folded onto the panic side. On a feasible
                # path that would mean the static proof was wrong — but it
                # also happens on *infeasible* paths the executor explores
                # when the solver degrades to UNKNOWN (fault injection,
                # incomplete theories): pc is unsatisfiable, so the guard
                # "fires" on values no real execution produces. The unpruned
                # run emits a panic outcome here and lets the verdict
                # machinery classify it; reproduce that outcome exactly.
                results.append(
                    Outcome(state, None,
                            PanicInfo(term.kind, term.message, fn.name))
                )
                return
            work.append((state, regs, term.target, 0))
            return
        survive = not_(cond) if term.panic_on_true else cond
        self.stats.pruned_guard_hits += 1
        self.stats.pruned_checks_avoided += 1 if state.witness is not None else 2
        by_fn = self.stats.pruned_hits_by_function
        by_fn[fn.name] = by_fn.get(fn.name, 0) + 1
        if self.analysis_check and term.site not in self._checked_sites:
            self._checked_sites.add(term.site)
            panic_cond = cond if term.panic_on_true else not_(cond)
            self.stats.solver_checks += 1
            if self.solver.check(*(state.pc + [panic_cond])) is SolveResult.SAT:
                raise SymexError(
                    f"analysis check failed: panic side of elided "
                    f"{term.kind} guard at {term.site} is satisfiable"
                )
        state.assume(survive)
        work.append((state, regs, term.target, 0))

    def _feasible_with_model(self, conditions, guard: bool = False):
        self.stats.solver_checks += 1
        verdict = self.solver.check(*conditions, guard=guard)
        if verdict is SolveResult.SAT:
            return True, self.solver.model().as_dict()
        if verdict is SolveResult.UNKNOWN:
            return True, None
        return False, None

    def _feasible(self, conditions) -> bool:
        self.stats.solver_checks += 1
        return self.solver.check(*conditions) is not SolveResult.UNSAT

    def _fork_on_index(self, state, regs, label, i, fork_request, work) -> None:
        """Concretization by forking: retry the same instruction once per
        feasible concrete value of the symbolic index."""
        content = state.memory.content(fork_request.block_id)
        if isinstance(content, ListVal):
            candidates = range(len(content.items))
        elif isinstance(content, StructVal):
            candidates = range(len(content.fields))
        else:
            raise SymexError("symbolic index into a scalar block")
        index = fork_request.index
        forked = 0
        for k in candidates:
            pin = eq(index, k)
            if not self._feasible(state.pc + [pin]):
                continue
            branch = state.fork()
            branch.assume(pin)
            branch.witness = None
            work.append((branch, dict(regs), label, i))
            forked += 1
        # An index value outside every physical slot would be a memory error;
        # the compiled bounds checks make that infeasible, so nothing to add.
        if forked:
            self.stats.forks += forked - 1

    # -- instruction semantics ------------------------------------------------------

    def _exec_simple(self, state: PathState, regs, insn) -> None:
        if isinstance(insn, BinOp):
            regs[insn.dest.name] = self._binop(
                insn.op, self._eval(regs, insn.lhs), self._eval(regs, insn.rhs)
            )
        elif isinstance(insn, ICmp):
            regs[insn.dest.name] = self._icmp(
                insn.pred, self._eval(regs, insn.lhs), self._eval(regs, insn.rhs)
            )
        elif isinstance(insn, Alloca):
            regs[insn.dest.name] = state.memory.alloc_slot()
        elif isinstance(insn, Load):
            ptr = self._pointer(self._eval(regs, insn.ptr))
            ptr = self._concretize_path(state, ptr)
            regs[insn.dest.name] = state.memory.load(ptr)
        elif isinstance(insn, Store):
            ptr = self._pointer(self._eval(regs, insn.ptr))
            ptr = self._concretize_path(state, ptr)
            state.memory.store(ptr, self._eval(regs, insn.value))
        elif isinstance(insn, GEP):
            base = self._pointer(self._eval(regs, insn.base))
            if base.is_null:
                raise SymexError("getelementptr on nil pointer (missing guard?)")
            if base.path:
                raise SymexError("nested getelementptr is not supported")
            if len(insn.indices) != 1:
                raise SymexError("multi-index getelementptr is not supported")
            index = self._eval(regs, insn.indices[0])
            if isinstance(index, IntExpr) and index.is_const:
                index = index.const
            regs[insn.dest.name] = base.child(index)
        else:
            raise SymexError(f"unknown instruction {insn!r}")

    def _do_call(self, state: PathState, regs, insn: Call, depth: int) -> List[Outcome]:
        args = [self._eval(regs, a) for a in insn.args]
        callee = insn.callee
        if callee == "list.new":
            ptr = state.memory.alloc(ListVal.concrete(()))
            return [Outcome(state, ptr)]
        if callee == "list.len":
            content = self._list_content(state, args[0])
            return [Outcome(state, content.length)]
        if callee == "list.append":
            ptr = self._pointer(args[0])
            content = self._list_content(state, args[0])
            try:
                state.memory.replace(ptr.block_id, content.appended(args[1]))
            except ValueError as exc:
                raise SymexError(str(exc)) from exc
            return [Outcome(state, None)]
        if callee == "newobject":
            type_hint = insn.type_hint
            if not isinstance(type_hint, (NamedType, StructType)):
                raise SymexError(f"newobject needs a struct type hint, got {type_hint!r}")
            ptr = self._new_object(state, self.registry.resolve(type_hint))
            return [Outcome(state, ptr)]
        if callee == "assume":
            cond = args[0]
            if not isinstance(cond, BoolExpr):
                raise SymexError("assume() needs a boolean")
            state.assume(cond)
            state.witness = None  # witness may not satisfy the new condition
            return [Outcome(state, None)]
        return self._call(state, callee, args, depth + 1)

    def _new_object(self, state: PathState, struct: StructType) -> Pointer:
        fields = []
        for _, field_type in struct.fields:
            fields.append(self._default_value(state, field_type))
        return state.memory.alloc(StructVal(struct.name, tuple(fields)))

    def _default_value(self, state: PathState, ty):
        from repro.ir.types import BoolType, IntType

        if isinstance(ty, IntType):
            return iconst(0)
        if isinstance(ty, BoolType):
            return bool_const(False)
        if isinstance(ty, PointerType):
            if isinstance(ty.pointee, ListType):
                return state.memory.alloc(ListVal.concrete(()))
            return NULL
        raise SymexError(f"no default value for field type {ty!r}")

    # -- value helpers ----------------------------------------------------------

    def _eval(self, regs, operand):
        if isinstance(operand, Register):
            try:
                return regs[operand.name]
            except KeyError:
                raise SymexError(f"read of unset register %{operand.name}") from None
        if isinstance(operand, ConstInt):
            return iconst(operand.value)
        if isinstance(operand, ConstBool):
            return bool_const(operand.value)
        if isinstance(operand, ConstNull):
            return NULL
        raise SymexError(f"cannot evaluate operand {operand!r}")

    def _pointer(self, value) -> Pointer:
        if not isinstance(value, Pointer):
            raise SymexError(f"expected a pointer, got {value!r}")
        return value

    def _list_content(self, state: PathState, value) -> ListVal:
        ptr = self._pointer(value)
        if ptr.is_null:
            raise SymexError("list operation on nil pointer (missing guard?)")
        if ptr.path:
            raise SymexError("list operation through interior pointer")
        content = state.memory.content(ptr.block_id)
        if not isinstance(content, ListVal):
            raise SymexError(f"block b{ptr.block_id} is not a list")
        return content

    def _concretize_path(self, state: PathState, ptr: Pointer) -> Pointer:
        """Resolve a symbolic element index to a concrete one.

        The codebase never indexes with a *random* symbolic value
        (section 5.4); when a symbolic index does appear it is pinned by the
        path condition, so one model + one entailment check suffices.
        """
        if not ptr.path:
            return ptr
        (index,) = ptr.path
        if isinstance(index, int):
            return ptr
        if isinstance(index, IntExpr):
            if index.is_const:
                return Pointer(ptr.block_id, (index.const,))
            if self.solver.check(*state.pc) is not SolveResult.SAT:
                raise SymexError("cannot concretise index on infeasible path")
            guess = self.solver.model().evaluate(index)
            pinned = self.solver.check(*(state.pc + [ne(index, guess)]))
            if pinned is SolveResult.UNSAT:
                return Pointer(ptr.block_id, (int(guess),))
            # Several indices feasible: fall back to concretization by
            # forking (section 5.1's "concretization techniques" for the few
            # variable-index accesses).
            raise _NeedsConcretization(ptr.block_id, index)
        raise SymexError(f"bad pointer path element {index!r}")

    def _binop(self, op, lhs, rhs):
        if op in ("add", "sub", "mul"):
            if not isinstance(lhs, IntExpr) or not isinstance(rhs, IntExpr):
                raise SymexError(f"{op} needs ints, got {lhs!r}, {rhs!r}")
            try:
                if op == "add":
                    return iadd(lhs, rhs)
                if op == "sub":
                    return isub(lhs, rhs)
                return imul(lhs, rhs)
            except NonLinearError as exc:
                raise SymexError(str(exc)) from exc
        if op in ("and", "or", "xor"):
            if not isinstance(lhs, BoolExpr) or not isinstance(rhs, BoolExpr):
                raise SymexError(f"{op} needs bools, got {lhs!r}, {rhs!r}")
            if op == "and":
                return and_(lhs, rhs)
            if op == "or":
                return or_(lhs, rhs)
            return or_(and_(lhs, not_(rhs)), and_(not_(lhs), rhs))
        raise SymexError(f"unknown binop {op!r}")

    _INT_CMP = {
        "eq": eq,
        "ne": ne,
        "slt": lt,
        "sle": le,
        "sgt": gt,
        "sge": ge,
    }

    def _icmp(self, pred, lhs, rhs):
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            if not (isinstance(lhs, Pointer) and isinstance(rhs, Pointer)):
                raise SymexError(f"pointer compared with non-pointer: {lhs!r}, {rhs!r}")
            if pred not in ("eq", "ne"):
                raise SymexError(f"pointers only compare eq/ne, got {pred}")
            same = lhs == rhs
            return bool_const(same if pred == "eq" else not same)
        if isinstance(lhs, BoolExpr) and isinstance(rhs, BoolExpr):
            if pred == "eq":
                return beq(lhs, rhs)
            if pred == "ne":
                return not_(beq(lhs, rhs))
            raise SymexError(f"bools only compare eq/ne, got {pred}")
        if isinstance(lhs, IntExpr) and isinstance(rhs, IntExpr):
            return self._INT_CMP[pred](lhs, rhs)
        raise SymexError(f"cannot compare {lhs!r} with {rhs!r}")


def _eval_with_default(expr: BoolExpr, model: dict) -> bool:
    from repro.solver.terms import eval_expr, free_vars

    filled = {name: model.get(name, 0) for name in free_vars(expr)}
    return bool(eval_expr(expr, filled))


def _as_concrete_bool(value: BoolExpr) -> Optional[bool]:
    from repro.solver.terms import BoolConst

    if isinstance(value, BoolConst):
        return value.value
    return None


class _NeedsConcretization(Exception):
    """Internal signal: a memory access used a truly symbolic index and the
    current path must fork over its feasible concrete values."""

    def __init__(self, block_id: int, index):
        super().__init__(f"symbolic index into b{block_id}")
        self.block_id = block_id
        self.index = index

"""Bridging concrete Python object graphs and executor memory.

The control plane builds the in-heap domain tree as ordinary Python
:class:`~repro.frontend.runtime.GoStruct` objects; :class:`HeapLoader`
serialises such a graph into executor memory as fully concrete blocks
(section 6.5's "concrete in-heap domain tree"). After execution,
:func:`concretize_value` walks a (possibly symbolic) result value under a
solver model and rebuilds plain Python data — the step that turns a
symbolic counterexample into a concrete, runnable query and response.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.runtime import GoStruct, struct_fields
from repro.solver.solver import Model
from repro.solver.terms import BoolExpr, IntExpr, bool_const, iconst
from repro.symex.errors import SymexError
from repro.symex.memory import Memory
from repro.symex.values import ListVal, NULL, Pointer, StructVal, UNINIT


class HeapLoader:
    """Loads Python GoStruct graphs into memory blocks (memoised, so shared
    subobjects map to shared blocks — pointer identity is preserved)."""

    def __init__(self, memory: Memory):
        self.memory = memory
        self._memo: Dict[int, Pointer] = {}
        # The memo keys are id()s; keep every loaded object alive so CPython
        # cannot recycle an id and silently alias two distinct objects.
        self._keepalive: list = []

    def load(self, obj):
        """Load any supported Python value, returning an executor value."""
        if obj is None:
            return NULL
        if isinstance(obj, bool):
            return bool_const(obj)
        if isinstance(obj, int):
            return iconst(obj)
        if isinstance(obj, (IntExpr, BoolExpr, Pointer)):
            return obj  # already an executor value (symbolic injection)
        if isinstance(obj, ListVal):
            return self.memory.alloc(obj)
        if isinstance(obj, list):
            key = id(obj)
            if key in self._memo:
                return self._memo[key]
            self._keepalive.append(obj)
            ptr = self.memory.alloc(ListVal.concrete(()))
            self._memo[key] = ptr
            items = tuple(self.load(item) for item in obj)
            self.memory.replace(ptr.block_id, ListVal.concrete(items))
            return ptr
        if isinstance(obj, GoStruct):
            key = id(obj)
            if key in self._memo:
                return self._memo[key]
            self._keepalive.append(obj)
            type_name = type(obj).__name__
            fields = struct_fields(type(obj))
            ptr = self.memory.alloc(StructVal(type_name, tuple(UNINIT for _ in fields)))
            self._memo[key] = ptr
            values = tuple(self.load(getattr(obj, f)) for f in fields)
            self.memory.replace(ptr.block_id, StructVal(type_name, values))
            return ptr
        raise SymexError(f"cannot load {type(obj).__name__} into symbolic memory")


def concretize_value(
    value, memory: Memory, model: Optional[Model] = None, registry=None, _memo=None
):
    """Rebuild plain Python data from an executor value under a model.

    Structs come back as dicts with a ``__type__`` key (field keys use real
    names when a type ``registry`` is supplied, positional ``f<i>`` keys
    otherwise); lists as Python lists truncated to their (model-evaluated)
    length; scalars as ints/bools. Shared and cyclic references are
    preserved via memoisation.
    """
    if _memo is None:
        _memo = {}
    if value is UNINIT:
        return None
    if isinstance(value, IntExpr):
        if value.is_const:
            return value.const
        if model is None:
            raise SymexError(f"symbolic value {value!r} needs a model to concretise")
        return model.evaluate(value)
    if isinstance(value, BoolExpr):
        if model is None:
            from repro.solver.terms import BoolConst

            if isinstance(value, BoolConst):
                return value.value
            raise SymexError(f"symbolic value {value!r} needs a model to concretise")
        return bool(model.evaluate(value))
    if isinstance(value, Pointer):
        if value.is_null:
            return None
        if value.path:
            raise SymexError("cannot concretise an interior pointer")
        key = value.block_id
        if key in _memo:
            return _memo[key]
        content = memory.content(value.block_id)
        if isinstance(content, ListVal):
            out_list: list = []
            _memo[key] = out_list
            length = concretize_value(content.length, memory, model, registry, _memo)
            for item in content.items[:length]:
                out_list.append(concretize_value(item, memory, model, registry, _memo))
            return out_list
        if isinstance(content, StructVal):
            out_dict: Dict[str, object] = {"__type__": content.type_name}
            _memo[key] = out_dict
            names = None
            if registry is not None and content.type_name in registry:
                names = [f for f, _ in registry.get(content.type_name).fields]
            for index, field in enumerate(content.fields):
                field_key = names[index] if names else f"f{index}"
                out_dict[field_key] = concretize_value(
                    field, memory, model, registry, _memo
                )
            return out_dict
        return concretize_value(content, memory, model, registry, _memo)
    raise SymexError(f"cannot concretise {value!r}")

"""The flexible memory model (paper section 5.1).

Memory is a mapping from block ids to contents, CompCert-style: blocks are
non-overlapping and referenced only through :class:`~repro.symex.values.Pointer`.
A block's content is a scalar slot value, a :class:`StructVal`, or a
:class:`ListVal`. Field access goes through LLVM-style index paths rather
than byte offsets, so individual fields can hold abstract values while their
siblings stay concrete — the partial abstraction the paper needs for
in-production data structures (Figure 3's leaky stack).

Contents are immutable; stores replace a block's content. Forking a path
therefore only shallow-copies the block map.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.symex.errors import SymexError
from repro.symex.values import ListVal, Pointer, StructVal, UNINIT


class Memory:
    """Block store with copy-on-fork semantics."""

    __slots__ = ("_blocks", "_next_id")

    def __init__(self, blocks: Optional[Dict[int, object]] = None, next_id: int = 1):
        self._blocks = blocks if blocks is not None else {}
        self._next_id = next_id

    def clone(self) -> "Memory":
        return Memory(dict(self._blocks), self._next_id)

    # -- allocation ----------------------------------------------------------

    def alloc(self, content) -> Pointer:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = content
        return Pointer(block_id)

    def alloc_slot(self) -> Pointer:
        return self.alloc(UNINIT)

    # -- access ---------------------------------------------------------------

    def content(self, block_id: int):
        try:
            return self._blocks[block_id]
        except KeyError:
            raise SymexError(f"dangling block id {block_id}") from None

    def load(self, ptr: Pointer):
        if ptr.is_null:
            raise SymexError("load through nil pointer (missing guard?)")
        content = self.content(ptr.block_id)
        if not ptr.path:
            if content is UNINIT:
                raise SymexError(f"load of uninitialised slot b{ptr.block_id}")
            if isinstance(content, (StructVal, ListVal)):
                raise SymexError("whole-aggregate load is not supported")
            return content
        (index,) = ptr.path
        if isinstance(content, StructVal):
            value = content.fields[index]
        elif isinstance(content, ListVal):
            if index >= len(content.items) or index < 0:
                raise SymexError(
                    f"physical list access out of range: {index} vs {len(content.items)}"
                )
            value = content.items[index]
        else:
            raise SymexError(f"indexed load into scalar block b{ptr.block_id}")
        if value is UNINIT:
            raise SymexError(f"load of uninitialised field b{ptr.block_id}[{index}]")
        return value

    def store(self, ptr: Pointer, value) -> None:
        if ptr.is_null:
            raise SymexError("store through nil pointer (missing guard?)")
        content = self.content(ptr.block_id)
        if not ptr.path:
            if isinstance(content, (StructVal, ListVal)):
                raise SymexError("whole-aggregate store is not supported")
            self._blocks[ptr.block_id] = value
            return
        (index,) = ptr.path
        if isinstance(content, StructVal):
            self._blocks[ptr.block_id] = content.with_field(index, value)
        elif isinstance(content, ListVal):
            if index >= len(content.items) or index < 0:
                raise SymexError(
                    f"physical list store out of range: {index} vs {len(content.items)}"
                )
            self._blocks[ptr.block_id] = content.with_item(index, value)
        else:
            raise SymexError(f"indexed store into scalar block b{ptr.block_id}")

    def replace(self, block_id: int, content) -> None:
        if block_id not in self._blocks:
            raise SymexError(f"dangling block id {block_id}")
        self._blocks[block_id] = content

    # -- introspection (used by summarization and heap decoding) --------------

    def block_ids(self):
        return self._blocks.keys()

    def snapshot(self) -> Dict[int, object]:
        return dict(self._blocks)

    @property
    def next_id(self) -> int:
        return self._next_id

    def __len__(self) -> int:
        return len(self._blocks)

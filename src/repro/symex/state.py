"""Per-path execution state."""

from __future__ import annotations

from typing import List, Optional

from repro.solver.terms import BoolExpr
from repro.symex.memory import Memory


class PathState:
    """One explored path: its memory and accumulated path condition.

    Register frames live in the executor's call recursion, not here — the
    state carries only what must survive across calls and what forking must
    duplicate.
    """

    __slots__ = ("memory", "pc", "witness")

    def __init__(self, memory: Optional[Memory] = None, pc: Optional[List[BoolExpr]] = None):
        self.memory = memory if memory is not None else Memory()
        self.pc: List[BoolExpr] = list(pc) if pc is not None else []
        #: A model known to satisfy ``pc`` (or None). Pure optimisation: the
        #: executor evaluates branch conditions under it to skip solver
        #: calls for the side the witness already demonstrates feasible.
        self.witness: Optional[dict] = None

    def fork(self) -> "PathState":
        forked = PathState(self.memory.clone(), list(self.pc))
        forked.witness = self.witness
        return forked

    def assume(self, condition: BoolExpr) -> None:
        self.pc.append(condition)

    def __repr__(self):
        return f"PathState({len(self.pc)} conditions, {len(self.memory)} blocks)"

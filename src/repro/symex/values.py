"""Runtime values of the symbolic executor.

Scalars are solver expressions directly — :class:`~repro.solver.IntExpr`
for ints and :class:`~repro.solver.BoolExpr` for bools — so a "concrete"
int is simply a constant expression. Aggregates are immutable:

- :class:`StructVal` — a tuple of field values (scalar or pointer);
- :class:`ListVal` — physical item slots plus a *symbolic length*, the
  section 5.4 encoding of variable-length lists (elements as individual
  variables, length as its own symbolic variable).

Pointers are always concrete ``(block_id, path)`` pairs: the heap is a
concrete domain tree (section 6.5) and allocation sites produce fresh
concrete blocks, so no pointer arithmetic ever becomes symbolic.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.solver.terms import BoolExpr, IntExpr, iconst

Scalar = Union[IntExpr, BoolExpr]


class _Uninit:
    """Value of an alloca slot before its first store."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<uninit>"


UNINIT = _Uninit()


class Pointer:
    """A concrete reference: block id plus an index path inside the block.

    ``path`` is ``()`` for a scalar slot and ``(index,)`` for a struct field
    or list element (indices may be symbolic expressions until the access is
    concretised). The nil pointer is the shared :data:`NULL` singleton with
    ``block_id is None``.
    """

    __slots__ = ("block_id", "path")

    def __init__(self, block_id: Optional[int], path: Tuple = ()):
        self.block_id = block_id
        self.path = path

    @property
    def is_null(self) -> bool:
        return self.block_id is None

    def child(self, index) -> "Pointer":
        return Pointer(self.block_id, self.path + (index,))

    def __eq__(self, other):
        return (
            isinstance(other, Pointer)
            and self.block_id == other.block_id
            and self.path == other.path
        )

    def __hash__(self):
        return hash(("ptr", self.block_id, self.path))

    def __repr__(self):
        if self.is_null:
            return "null"
        suffix = "".join(f"[{p!r}]" for p in self.path)
        return f"&b{self.block_id}{suffix}"


NULL = Pointer(None)


class StructVal:
    """Immutable struct contents; ``type_name`` keys the type registry."""

    __slots__ = ("type_name", "fields")

    def __init__(self, type_name: str, fields: Tuple):
        self.type_name = type_name
        self.fields = tuple(fields)

    def with_field(self, index: int, value) -> "StructVal":
        fields = list(self.fields)
        fields[index] = value
        return StructVal(self.type_name, tuple(fields))

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.fields)
        return f"{self.type_name}{{{inner}}}"


class ListVal:
    """Immutable abstract list: physical slots + symbolic length.

    For fully concrete lists ``length == len(items)``. For symbolic inputs
    (the query name), ``items`` holds one symbolic variable per potential
    element and ``length`` is its own variable boxed by the path condition —
    physical capacity is the verification-time depth bound.
    """

    __slots__ = ("items", "length")

    def __init__(self, items: Tuple, length: IntExpr):
        self.items = tuple(items)
        self.length = length

    @classmethod
    def concrete(cls, items) -> "ListVal":
        items = tuple(items)
        return cls(items, iconst(len(items)))

    @property
    def has_concrete_length(self) -> bool:
        return self.length.is_const

    def appended(self, value) -> "ListVal":
        if not self.has_concrete_length:
            raise ValueError(
                "append to symbolic-length list (inputs are read-only by design)"
            )
        if self.length.const != len(self.items):
            raise ValueError("concrete list length out of sync with storage")
        return ListVal(self.items + (value,), iconst(len(self.items) + 1))

    def with_item(self, index: int, value) -> "ListVal":
        items = list(self.items)
        items[index] = value
        return ListVal(tuple(items), self.length)

    def __repr__(self):
        inner = ", ".join(repr(i) for i in self.items)
        return f"[{inner}|len={self.length!r}]"


def is_concrete_int(value) -> bool:
    return isinstance(value, IntExpr) and value.is_const


def concrete_int(value) -> int:
    if not is_concrete_int(value):
        raise ValueError(f"expected a concrete int, got {value!r}")
    return value.const

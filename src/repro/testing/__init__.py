"""SCALE-style differential testing (paper section 10 related work).

SCALE generates test cases from the formal semantics and cross-checks DNS
implementations; DNS-V subsumes it but keeps a differential tester around
for two jobs: validating symbolic counterexamples by concrete re-execution,
and cheaply smoke-testing new engine versions and random zones before the
(heavier) verification runs.
"""

from repro.testing.differential import (
    DifferentialResult,
    Divergence,
    differential_test,
    enumerate_queries,
)
from repro.testing.chaosdrill import (
    ChaosDrillConfig,
    ChaosDrillReport,
    chaos_drill,
)
from repro.testing.faultdrill import FaultDrillReport, SiteOutcome, fault_drill

__all__ = [
    "ChaosDrillConfig",
    "ChaosDrillReport",
    "DifferentialResult",
    "Divergence",
    "differential_test",
    "enumerate_queries",
    "FaultDrillReport",
    "SiteOutcome",
    "chaos_drill",
    "fault_drill",
]

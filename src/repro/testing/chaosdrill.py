"""Chaos soak of the live serving plane: ``repro chaosdrill --serve``.

The fault drill (:mod:`repro.testing.faultdrill`) proves each injection
site degrades typed *in isolation*; the chaos drill proves the serving
plane holds its invariants when everything fires *at once*. One soak:

- boots a :class:`~repro.serve.server.ZoneServer` (journal attached,
  overload ladder armed, self-checking on) and verifies the boot zone;
- drives a seeded query mix — valid queries over UDP and TCP, malformed
  packets, short packets, QR=1 reflections — against the live sockets;
- lands gated zone deltas mid-soak through the file reloader, including
  one bug-triggering delta the gate must hold;
- keeps a seeded :class:`~repro.resilience.faults.FaultPlan` firing
  across every ``serve.*`` site the whole time.

Afterwards it asserts the invariants that define "chaos-hardened":

``boot_verified``            the zone verified before the first packet
``no_unverified_served``     every digest observed serving was VERIFIED
``held_never_served``        the bug-triggering delta's digest never served
``journal_all_verified``     every journal record names a VERIFIED zone
``journal_covers_serving``   journal head sequence >= serving sequence
``metrics_conserved``        received == answered + dropped, exactly
``no_uncaught_exceptions``   nothing escaped to the event loop
``selfcheck_clean``          post-soak differential self-check: 0 divergences
``status_readable``          the status channel still serves valid JSON
``restart_recovers``         a fresh server over the same journal starts
                             VERIFIED (bit-identical when the journal head
                             matches; re-verified when it ran ahead)

The drill is deliberately *invariant*-based, not trace-based: fault
timing shifts with event-loop interleaving, so two soaks with one seed
may fire different counts — but the invariants must hold for every
interleaving. A violated invariant is a bug, not flakiness.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import struct
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.wire import build_query
from repro.resilience import faults
from repro.resilience import verdicts as verdicts_mod
from repro.resilience.supervise import RetryPolicy

# NOTE: repro.serve / repro.incremental / repro.zonegen are imported
# lazily inside functions — this module is re-exported by repro.testing,
# which repro.core (and through it the serve gate's verifier) imports, so
# a top-level serve import here would close an import cycle.

#: The valid half of the soak mix: exact match, apex SOA/NS, NODATA,
#: NXDOMAIN — everything the minimal zone can be asked.
QUERY_MIX: Tuple[Tuple[str, RRType], ...] = (
    ("www.example.com.", RRType.A),
    ("example.com.", RRType.SOA),
    ("example.com.", RRType.NS),
    ("ns1.example.com.", RRType.A),
    ("www.example.com.", RRType.MX),
    ("missing.example.com.", RRType.A),
)


def benign_delta_text(round_no: int) -> str:
    """A delta the gate publishes (rdata change only)."""
    from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

    return MINIMAL_ZONE_TEXT.replace("192.0.2.10", f"192.0.2.{100 + round_no}")


def buggy_delta_text() -> str:
    """The wildcard-MX delta that triggers the seeded v2.0 engine bug:
    under a buggy serving version the gate must HOLD it, and its digest
    must never be observed serving."""
    from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

    return MINIMAL_ZONE_TEXT + (
        "*.wild IN A 192.0.2.20\n"
        "*.wild IN MX 10 ns1.example.com.\n"
    )


def next_packet(rng: random.Random, txid: int,
                malformed_fraction: float) -> bytes:
    """One seeded packet from the mix: mostly valid, a slice of garbage."""
    roll = rng.random()
    if roll < malformed_fraction:
        shape = rng.randrange(3)
        if shape == 0:
            return b"\x01\x02"  # shorter than a header: dropped
        if shape == 1:
            # QR=1: a reflected response, dropped per RFC 1035 7.1
            return struct.pack("!HHHHHH", txid & 0xFFFF, 0x8000, 0, 0, 0, 0)
        # Header claims one question, then a truncated name: FORMERR
        return struct.pack("!HHHHHH", txid & 0xFFFF, 0, 1, 0, 0, 0) + b"\xff"
    name, qtype = QUERY_MIX[rng.randrange(len(QUERY_MIX))]
    return build_query(txid & 0xFFFF, Query(DnsName.from_text(name), qtype))


@dataclass
class ChaosDrillConfig:
    """One soak's knobs (all seeded/deterministic inputs)."""

    seed: int = 0
    queries: int = 400
    fault_rate: float = 0.02
    deltas: int = 3
    malformed_fraction: float = 0.1
    tcp_fraction: float = 0.15
    version: str = "v2.0"  # a buggy engine: the gate is what protects it
    qps_capacity: float = 800.0
    selfcheck_every: int = 16
    grace: float = 2.0
    #: Wall-clock cap on the drive loop (None = run all ``queries``).
    duration: Optional[float] = None


@dataclass
class ChaosDrillReport:
    """What one soak observed, and whether the invariants held."""

    seed: int
    version: str
    queries_sent: int
    replies_received: int
    invariants: Dict[str, bool]
    faults_fired: Dict[str, int]
    faults_consulted: Dict[str, int]
    deltas: List[Dict[str, object]]
    metrics: Dict[str, object]
    gate: Dict[str, object]
    degrade: Optional[Dict[str, object]]
    selfcheck: Dict[str, object]
    restart: Dict[str, object]
    elapsed_seconds: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(self.invariants.values())

    def describe(self) -> str:
        lines = [
            f"chaos drill (seed={self.seed}, {self.version}): "
            f"{'clean' if self.clean else 'INVARIANT VIOLATIONS'}",
            f"  sent {self.queries_sent} queries, {self.replies_received} "
            f"replies, {len(self.deltas)} deltas, "
            f"{sum(self.faults_fired.values())} faults fired "
            f"in {self.elapsed_seconds:.2f}s",
        ]
        for name, held in sorted(self.invariants.items()):
            lines.append(f"  {'ok  ' if held else 'FAIL'} {name}")
        for site, count in sorted(self.faults_fired.items()):
            lines.append(f"       fired {site} x{count}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "version": self.version,
            "clean": self.clean,
            "queries_sent": self.queries_sent,
            "replies_received": self.replies_received,
            "invariants": dict(self.invariants),
            "faults_fired": dict(self.faults_fired),
            "faults_consulted": dict(self.faults_consulted),
            "deltas": list(self.deltas),
            "metrics": self.metrics,
            "gate": self.gate,
            "degrade": self.degrade,
            "selfcheck": self.selfcheck,
            "restart": self.restart,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "failures": list(self.failures),
        }


class _DrillClient(asyncio.DatagramProtocol):
    """Fire-and-forget UDP sender that counts whatever comes back."""

    def __init__(self):
        self.transport = None
        self.replies = 0

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.replies += 1


async def _tcp_drive(host: str, port: int, wires: List[bytes],
                     timeout: float = 2.0) -> int:
    """Pipeline ``wires`` over TCP, reopening when the server closes on
    us (malformed frame, injected fault, shed); returns replies read."""
    replies = 0
    idx = 0
    while idx < len(wires):
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError:
            break
        try:
            while idx < len(wires):
                wire = wires[idx]
                idx += 1
                try:
                    writer.write(struct.pack("!H", len(wire)) + wire)
                    await writer.drain()
                    header = await asyncio.wait_for(
                        reader.readexactly(2), timeout
                    )
                    (length,) = struct.unpack("!H", header)
                    await asyncio.wait_for(
                        reader.readexactly(length), timeout
                    )
                    replies += 1
                except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                        ConnectionError, OSError):
                    break  # server broke the connection: reopen, carry on
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
    return replies


async def _read_status(host: str, port: int) -> Optional[Dict[str, object]]:
    try:
        reader, writer = await asyncio.open_connection(host, port)
        raw = await asyncio.wait_for(reader.readline(), 5.0)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return json.loads(raw)
    except (OSError, ValueError, asyncio.TimeoutError):
        return None


def _write_zone(path: str, text: str, bump: int) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    # Force a visible mtime change even inside one filesystem tick.
    stamp = time.time() + bump
    os.utime(path, (stamp, stamp))


async def _soak(config: ChaosDrillConfig, workdir: str) -> ChaosDrillReport:
    from repro.dns.zonefile import parse_zone_text, zone_to_text
    from repro.incremental.digest import zone_digest
    from repro.serve.reload import ZoneReloader
    from repro.serve.server import ZoneServer
    from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

    started = time.perf_counter()
    zone = parse_zone_text(MINIMAL_ZONE_TEXT)
    zone_path = os.path.join(workdir, "zone.db")
    journal_path = os.path.join(workdir, "publish.journal")
    _write_zone(zone_path, MINIMAL_ZONE_TEXT, 0)

    server = ZoneServer(
        zone,
        config.version,
        port=0,
        status_port=0,
        selfcheck_every=config.selfcheck_every,
        journal=journal_path,
        max_qps=config.qps_capacity,
        tcp_idle_timeout=5.0,
    )
    uncaught: List[str] = []
    await server.start()
    loop = asyncio.get_running_loop()
    loop.set_exception_handler(
        lambda _loop, ctx: uncaught.append(
            repr(ctx.get("exception") or ctx.get("message"))
        )
    )
    boot = await server.verify_boot()

    reloader = ZoneReloader(
        zone_path, server.gate,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
        sleep=lambda _delay: None,
    )
    reloader.prime()

    rng = random.Random(config.seed)
    served_digests = {server.snapshot.digest}
    verified_digests = {server.snapshot.digest}
    held_digests = set()
    delta_log: List[Dict[str, object]] = []

    plan = faults.FaultPlan.seeded(
        config.seed, rate=config.fault_rate, sites=faults.SERVE_SITES
    )
    client: _DrillClient
    udp_transport, client = await loop.create_datagram_endpoint(
        _DrillClient, remote_addr=(server.host, server.port)
    )

    tcp_wires: List[bytes] = []
    tcp_replies = 0
    sent = 0
    deltas_done = 0
    delta_every = max(1, config.queries // (config.deltas + 1))

    # The cap bounds the *drive* phase: boot + verification time (which
    # can exceed a short cap on its own) is not charged against it.
    deadline = (None if config.duration is None
                else time.perf_counter() + config.duration)
    with faults.active(plan):
        for i in range(config.queries):
            if deadline is not None and time.perf_counter() > deadline:
                break  # invariants hold for any prefix of the soak
            wire = next_packet(rng, 0x4000 + i, config.malformed_fraction)
            if rng.random() < config.tcp_fraction:
                tcp_wires.append(wire)
                if len(tcp_wires) >= 10:
                    tcp_replies += await _tcp_drive(
                        server.host, server.port, tcp_wires
                    )
                    tcp_wires = []
            else:
                client.transport.sendto(wire)
            sent += 1
            if i % 13 == 0:
                await asyncio.sleep(0)  # let the loop deliver datagrams
            served_digests.add(server.snapshot.digest)
            if (i + 1) % delta_every == 0 and deltas_done < config.deltas:
                buggy = deltas_done == 1  # one mid-soak poisoned delta
                text = (buggy_delta_text() if buggy
                        else benign_delta_text(deltas_done))
                digest = zone_digest(parse_zone_text(text))
                _write_zone(zone_path, text, deltas_done + 1)
                result = await asyncio.to_thread(reloader.poll_once)
                deltas_done += 1
                entry: Dict[str, object] = {
                    "kind": "buggy" if buggy else "benign",
                    "digest": digest,
                }
                if result is None:
                    entry["verdict"] = None  # IO failure: retried next poll
                else:
                    entry["verdict"] = result.verdict
                    entry["accepted"] = result.accepted
                    if result.accepted:
                        verified_digests.add(result.snapshot_digest)
                    else:
                        held_digests.add(digest)
                if buggy:
                    held_digests.add(digest)
                delta_log.append(entry)
        if tcp_wires:
            tcp_replies += await _tcp_drive(server.host, server.port,
                                            tcp_wires)
        await asyncio.sleep(0.05)  # drain in-flight datagrams
        served_digests.add(server.snapshot.digest)

    # -- post-soak checks, fault plan gone -----------------------------------
    selfcheck_report = await server.run_selfcheck() or {}
    status_doc = await _read_status(server.host, server.status_port)
    conservation = server.metrics.conservation()
    journal_records = server.journal.replay()
    final_digest = server.snapshot.digest
    final_sequence = server.snapshot.sequence
    metrics = server.metrics.as_dict()
    gate_health = server.gate.health()
    degrade_state = (server.degrade.as_dict()
                     if server.degrade is not None else None)
    udp_transport.close()
    await server.drain(config.grace)

    # -- restart over the same journal ---------------------------------------
    restart: Dict[str, object] = {}
    restart_ok = False
    try:
        reborn = ZoneServer(
            parse_zone_text(zone_to_text(server.snapshot.zone)),
            config.version,
            status_port=None,
            journal=journal_path,
        )
        bit_identical = (
            reborn.snapshot.digest == final_digest
            and reborn.recovered_sequence == final_sequence
        )
        if not bit_identical:
            # Journal ran ahead (a swap-site fault after an append):
            # start() must re-verify and come up rather than wedge.
            await reborn.start()
            await reborn.stop()
        restart_ok = bit_identical or reborn.snapshot.digest in (
            verified_digests | {final_digest}
        )
        restart = {
            "bit_identical": bit_identical,
            "digest": reborn.snapshot.digest,
            "sequence": reborn.snapshot.sequence,
            "recovered_sequence": reborn.recovered_sequence,
        }
    except Exception as exc:  # RecoveryError, bind failures
        restart = {"error": f"{type(exc).__name__}: {exc}"}

    invariants = {
        "boot_verified": boot.verdict == verdicts_mod.VERIFIED,
        "no_unverified_served": served_digests <= verified_digests,
        "held_never_served": not (held_digests & served_digests),
        "journal_all_verified": all(
            r.verdict == verdicts_mod.VERIFIED for r in journal_records
        ),
        "journal_covers_serving": bool(journal_records)
        and journal_records[-1].sequence >= final_sequence,
        "metrics_conserved": bool(conservation["conserved"]),
        "no_uncaught_exceptions": not uncaught,
        "selfcheck_clean": (
            selfcheck_report.get("divergences", 0) == 0
            and selfcheck_report.get("spec_divergences", 0) == 0
        ),
        "status_readable": status_doc is not None,
        "restart_recovers": restart_ok,
    }
    failures = [name for name, held in invariants.items() if not held]
    if uncaught:
        failures.extend(f"uncaught: {u}" for u in uncaught[:5])

    return ChaosDrillReport(
        seed=config.seed,
        version=config.version,
        queries_sent=sent,
        replies_received=client.replies + tcp_replies,
        invariants=invariants,
        faults_fired=dict(plan.fired),
        faults_consulted=dict(plan.consults),
        deltas=delta_log,
        metrics=metrics,
        gate=gate_health,
        degrade=degrade_state,
        selfcheck=selfcheck_report,
        restart=restart,
        elapsed_seconds=time.perf_counter() - started,
        failures=failures,
    )


def chaos_drill(config: Optional[ChaosDrillConfig] = None,
                workdir: Optional[str] = None) -> ChaosDrillReport:
    """Run one serve-plane chaos soak; see the module docstring."""
    config = config if config is not None else ChaosDrillConfig()
    if workdir is not None:
        return asyncio.run(_soak(config, workdir))
    with tempfile.TemporaryDirectory() as tmp:
        return asyncio.run(_soak(config, tmp))

"""Differential testing of engine versions against the specifications.

``differential_test`` enumerates a structured query corpus for a zone (all
owner names and their parents, fresh siblings, literal-wildcard and
below-wildcard names, below-delegation names — each crossed with every
queryable type), then compares three implementations pairwise:

- the engine version, executed natively;
- the executable top-level specification, executed natively;
- the independent reference resolver over :mod:`repro.dns` objects.

Any disagreement (or engine crash) is returned as a :class:`Divergence`.
Unlike verification this cannot prove absence of bugs, but it runs in
milliseconds and catches seeded-bug regressions instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.dns.message import Query, Response, response_diff
from repro.dns.name import DnsName
from repro.dns.rtypes import QUERYABLE_TYPES, RRType
from repro.dns.zone import Zone
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response as GoResponse
from repro.spec import reference_resolve, toplevel

#: Labels available for synthesizing off-zone query names.
_PROBE_LABELS = ("zz", "z0", "qq")


@dataclass
class Divergence:
    """One disagreement between two implementations."""

    query: Query
    left: str
    right: str
    diffs: Tuple[str, ...]
    crash: Optional[str] = None

    def describe(self) -> str:
        if self.crash is not None:
            return f"{self.left} crashed on {self.query.to_text()}: {self.crash}"
        return (
            f"{self.left} vs {self.right} on {self.query.to_text()}: "
            + "; ".join(self.diffs[:3])
        )


@dataclass
class DifferentialResult:
    version: str
    zone_origin: str
    queries_run: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.divergences)} divergence(s)"
        lines = [
            f"differential {self.version} on {self.zone_origin}: "
            f"{status} over {self.queries_run} queries"
        ]
        lines.extend("  " + d.describe() for d in self.divergences[:20])
        return "\n".join(lines)


def enumerate_queries(zone: Zone) -> List[Query]:
    """The structured query corpus for a zone."""
    names = set(zone.names())
    probes = set(names)
    for name in list(names):
        if len(name) > len(zone.origin):
            probes.add(name.parent())
        for label in _PROBE_LABELS[:1]:
            try:
                probes.add(name.prepend(label))
            except ValueError:
                pass
    for name in list(names):
        if name.is_wildcard:
            parent = name.wildcard_parent()
            probes.add(parent)  # the wildcard's parent (often an ENT)
            probes.add(DnsName(("zz",) + parent.labels))  # single-label match
            probes.add(DnsName(("zz", "z0") + parent.labels))  # multi-label
    probes.add(DnsName.from_text("www.elsewhere.org."))  # out of bailiwick
    queries = []
    for name in sorted(probes):
        for qtype in QUERYABLE_TYPES:
            queries.append(Query(name, qtype))
    return queries


def differential_test(
    zone: Zone,
    version: str = "verified",
    queries: Optional[Iterable[Query]] = None,
    check_reference: bool = True,
) -> DifferentialResult:
    """Cross-check ``version`` against the spec (and optionally the
    reference resolver) over the query corpus."""
    query_list = list(queries) if queries is not None else enumerate_queries(zone)
    extra = sorted(
        {lab for q in query_list for lab in q.qname.labels} - set(zone.label_universe())
        - {"*"}
    )
    encoder = ZoneEncoder(zone, extra_labels=extra)
    tree = control.build_domain_tree(encoder)
    flat = control.build_flat_zone(encoder)
    result = DifferentialResult(version, zone.origin.to_text())
    version_module = control.ENGINE_VERSIONS[version]

    for query in query_list:
        result.queries_run += 1
        codes = [encoder.interner.code(lab) for lab in query.qname.reversed_labels]
        spec_go = GoResponse()
        toplevel.rrlookup(flat, list(codes), int(query.qtype), spec_go)
        spec_resp = encoder.decode_response(query, spec_go)

        try:
            engine_go = control.run_engine_concrete(
                version_module, tree, codes, int(query.qtype)
            )
        except (IndexError, AttributeError, TypeError) as exc:
            result.divergences.append(
                Divergence(query, f"engine[{version}]", "spec", (),
                           crash=f"{type(exc).__name__}: {exc}")
            )
            continue
        engine_resp = encoder.decode_response(query, engine_go)
        if not engine_resp.semantically_equal(spec_resp):
            result.divergences.append(
                Divergence(
                    query,
                    f"engine[{version}]",
                    "spec",
                    tuple(response_diff(engine_resp, spec_resp)),
                )
            )
        if check_reference:
            ref_resp = reference_resolve(zone, query)
            if not ref_resp.semantically_equal(spec_resp):
                result.divergences.append(
                    Divergence(
                        query,
                        "reference",
                        "spec",
                        tuple(response_diff(ref_resp, spec_resp)),
                    )
                )
    return result

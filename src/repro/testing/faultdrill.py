"""Fault drill: drive every injection site to a typed verdict.

The resilience contract is that each site in
:data:`repro.resilience.faults.KNOWN_SITES` degrades to a *typed* outcome —
a :mod:`repro.resilience.verdicts` kind, a counted cache miss, or a watch
health event — never an uncaught exception. :func:`fault_drill` proves it
by running one small scenario per site under a scripted
:class:`~repro.resilience.faults.FaultPlan` and recording what the system
reported. The CI smoke job runs this via ``python -m repro faultdrill``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import List

from repro.resilience import faults
from repro.resilience import verdicts as verdicts_mod


@dataclass
class SiteOutcome:
    """What one injection site degraded to."""

    site: str
    fired: int
    verdict: str
    detail: str
    typed: bool  # the outcome was a typed verdict, not an escape

    def describe(self) -> str:
        status = "ok" if self.typed else "ESCAPED"
        return (
            f"{self.site:16s} fired={self.fired} -> {self.verdict} "
            f"[{status}] {self.detail}"
        )


@dataclass
class FaultDrillReport:
    """One drill over every known site."""

    version: str
    outcomes: List[SiteOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Every site fired at least once and produced a typed outcome."""
        covered = {o.site for o in self.outcomes}
        return set(faults.KNOWN_SITES) <= covered and all(
            o.typed and o.fired > 0 for o in self.outcomes
        )

    def describe(self) -> str:
        lines = [f"fault drill ({self.version}): "
                 f"{'clean' if self.clean else 'FAILURES'}"]
        lines.extend("  " + o.describe() for o in self.outcomes)
        return "\n".join(lines)


def _drill_compile(version: str) -> SiteOutcome:
    from repro.core.campaign import Campaign
    from repro.zonegen import corpus

    plan = faults.FaultPlan.scripted({faults.SITE_COMPILE: 1})
    with faults.active(plan):
        report = Campaign(zones=[corpus.minimal_zone()]).run(
            version, smoke_first=False
        )
    unit = report.verdicts[0]
    return SiteOutcome(
        faults.SITE_COMPILE,
        plan.fired.get(faults.SITE_COMPILE, 0),
        f"{unit.verdict}({unit.error_class})",
        unit.error_detail,
        typed=unit.verdict == verdicts_mod.ERROR
        and unit.error_class == verdicts_mod.ERR_COMPILE,
    )


def _drill_solver(version: str) -> SiteOutcome:
    from repro.core.pipeline import VerificationSession
    from repro.zonegen import corpus

    # Every check degrades to UNKNOWN; the pipeline must report an
    # UNKNOWN verdict instead of claiming a proof.
    plan = faults.FaultPlan.scripted({faults.SITE_SOLVER: 10_000})
    with faults.active(plan):
        result = VerificationSession(corpus.minimal_zone(), version).verify()
    reason = result.unknown_reason or "-"
    return SiteOutcome(
        faults.SITE_SOLVER,
        plan.fired.get(faults.SITE_SOLVER, 0),
        f"{result.verdict}({reason})",
        f"{result.solver_checks} checks degraded",
        typed=result.verdict == verdicts_mod.UNKNOWN,
    )


def _drill_cache(site: str, version: str) -> SiteOutcome:
    from repro.core.pipeline import VerificationSession
    from repro.incremental.cache import SummaryCache
    from repro.zonegen import corpus

    zone = corpus.minimal_zone()
    with tempfile.TemporaryDirectory() as tmp:
        cache = SummaryCache(cache_dir=tmp)
        if site == faults.SITE_CACHE_CORRUPT:
            # Corruption fires on *disk* reads, so the entries must exist
            # first — published by a separate cache instance, or the
            # in-memory layer would satisfy every lookup.
            VerificationSession(
                zone, version, cache=SummaryCache(cache_dir=tmp)
            ).verify()
        plan = faults.FaultPlan.scripted({site: 2})
        with faults.active(plan):
            result = VerificationSession(zone, version, cache=cache).verify()
        stats = cache.stats()
    counter = "corrupt" if site == faults.SITE_CACHE_CORRUPT else "io_errors"
    return SiteOutcome(
        site,
        plan.fired.get(site, 0),
        result.verdict,
        f"cache {counter}={stats[counter]}",
        typed=result.verdict == verdicts_mod.VERIFIED and stats[counter] > 0,
    )


def _drill_watch(site: str, version: str) -> SiteOutcome:
    import os

    from repro.dns.zonefile import zone_to_text
    from repro.incremental.watch import WatchDaemon
    from repro.resilience.supervise import RetryPolicy
    from repro.zonegen import corpus

    retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "zone.db")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(zone_to_text(corpus.minimal_zone()))
        daemon = WatchDaemon(
            path, version=version, retry=retry, sleep=lambda _delay: None,
            log=lambda _line: None,
        )
        if site == faults.SITE_WATCH_STAT:
            # Outlast the retry budget: the poll must degrade to a typed
            # failure event, not an escaped OSError.
            plan = faults.FaultPlan.scripted({site: 2})
        else:
            # One transient read fault: the retry must absorb it and the
            # poll still verify the zone.
            plan = faults.FaultPlan.scripted({site: 1})
        with faults.active(plan):
            event = daemon.poll_once()
    fired = plan.fired.get(site, 0)
    if event is None:
        return SiteOutcome(site, fired, "no-event", "", typed=False)
    if event.error is not None:
        return SiteOutcome(
            site, fired, f"{verdicts_mod.ERROR}({verdicts_mod.ERR_IO})",
            event.error, typed=site == faults.SITE_WATCH_STAT,
        )
    return SiteOutcome(
        site, fired, event.outcome.result.verdict,
        f"recovered after {event.health.get('attempts')} attempt(s)",
        typed=site == faults.SITE_WATCH_READ
        and event.outcome.result.verdict == verdicts_mod.VERIFIED,
    )


class _SendRecorder:
    """A stand-in datagram transport that remembers what was sent."""

    def __init__(self):
        self.sent = []

    def sendto(self, data, addr) -> None:
        self.sent.append((data, addr))


def _drill_serve_udp(site: str, version: str) -> SiteOutcome:
    from repro.dns.message import Query
    from repro.dns.rtypes import RRType
    from repro.dns.wire import build_query
    from repro.serve.server import ZoneServer, _UdpProtocol
    from repro.zonegen import corpus

    zone = corpus.minimal_zone()
    server = ZoneServer(zone, version, status_port=None)
    wire = build_query(0x1234, Query(zone.origin, RRType.SOA))
    plan = faults.FaultPlan.scripted({site: 1})
    with faults.active(plan):
        if site == faults.SITE_SERVE_UDP_RECV:
            reply = server.handle_packet(wire, "198.51.100.1", "udp")
            ok = reply == b"" and server.metrics.dropped_fault == 1
            verdict = "dropped"
            detail = f"dropped_fault={server.metrics.dropped_fault}"
        else:  # serve.udp.send: the reply is built, delivery fails
            proto = _UdpProtocol(server)
            proto.transport = _SendRecorder()
            proto.datagram_received(wire, ("198.51.100.1", 12345))
            ok = server.metrics.send_failures == 1 and not proto.transport.sent
            verdict = "reply-lost"
            detail = f"send_failures={server.metrics.send_failures}"
    conserved = bool(server.metrics.conservation()["conserved"])
    return SiteOutcome(site, plan.fired.get(site, 0), verdict, detail,
                       typed=ok and conserved)


def _drill_serve_tcp(site: str, version: str) -> SiteOutcome:
    import asyncio
    import struct

    from repro.dns.message import Query
    from repro.dns.rtypes import RRType
    from repro.dns.wire import build_query
    from repro.serve.server import ZoneServer
    from repro.zonegen import corpus

    zone = corpus.minimal_zone()
    wire = build_query(0x2345, Query(zone.origin, RRType.SOA))
    plan = faults.FaultPlan.scripted({site: 1})

    async def scenario():
        server = ZoneServer(zone, version, status_port=None)
        await server.start()
        try:
            with faults.active(plan):
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(struct.pack("!H", len(wire)) + wire)
                await writer.drain()
                try:
                    # EOF — or RST, when the server broke off with our
                    # frame still unread in its receive buffer.
                    data = await reader.read(65536)
                except ConnectionError:
                    data = b""
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            await server.stop()
        return server.metrics, data

    metrics, data = asyncio.run(scenario())
    if site == faults.SITE_SERVE_TCP_READ:
        ok = metrics.tcp_read_faults == 1 and data == b""
        detail = f"tcp_read_faults={metrics.tcp_read_faults}"
    else:  # serve.tcp.write: reply built and counted, write failed
        ok = metrics.tcp_disconnects == 1 and data == b""
        detail = f"tcp_disconnects={metrics.tcp_disconnects}"
    conserved = bool(metrics.conservation()["conserved"])
    return SiteOutcome(site, plan.fired.get(site, 0), "connection-closed",
                       detail, typed=ok and conserved)


def _drill_serve_reload(version: str) -> SiteOutcome:
    import os

    from repro.dns.zonefile import zone_to_text
    from repro.resilience.supervise import RetryPolicy
    from repro.serve.gate import PublishGate
    from repro.serve.reload import ZoneReloader
    from repro.serve.snapshot import build_snapshot
    from repro.zonegen import corpus

    site = faults.SITE_SERVE_RELOAD_READ
    zone = corpus.minimal_zone()
    retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "zone.db")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(zone_to_text(zone))
        gate = PublishGate(build_snapshot(zone, version))
        reloader = ZoneReloader(path, gate, retry=retry,
                                sleep=lambda _delay: None)
        # One transient read fault: the retry must absorb it and the
        # reload still verify and publish.
        plan = faults.FaultPlan.scripted({site: 1})
        with faults.active(plan):
            result = reloader.poll_once()
    fired = plan.fired.get(site, 0)
    if result is None:
        return SiteOutcome(site, fired, "no-result",
                           reloader.last_error or "", typed=False)
    return SiteOutcome(
        site, fired, result.verdict,
        f"absorbed by retry, reloads={reloader.reloads}",
        typed=result.verdict == verdicts_mod.VERIFIED
        and reloader.failures == 0,
    )


def _drill_serve_gate(site: str, version: str) -> SiteOutcome:
    import os

    from repro.resilience import verdicts
    from repro.serve.gate import PublishGate
    from repro.serve.journal import PublishJournal
    from repro.serve.snapshot import build_snapshot
    from repro.zonegen import corpus

    zone = corpus.minimal_zone()
    with tempfile.TemporaryDirectory() as tmp:
        journal = PublishJournal(os.path.join(tmp, "publish.journal"))
        gate = PublishGate(build_snapshot(zone, version), journal=journal)
        before = gate.snapshot
        plan = faults.FaultPlan.scripted({site: 1})
        with faults.active(plan):
            result = gate.submit(zone)
        held_clean = (
            not result.accepted
            and result.verdict == verdicts.ERROR
            and gate.snapshot is before
            and gate.alarm is not None
        )
        if site == faults.SITE_SERVE_GATE_VERIFY:
            typed = held_clean and result.reason == verdicts.ERR_INJECTED
            detail = "prover crash: typed hold, snapshot untouched"
        elif site == faults.SITE_SERVE_SNAPSHOT_SWAP:
            # Journal-before-swap means the failed swap leaves a record
            # the serving state never reached — legal (journal is an
            # upper bound), and the retry below reconciles it.
            typed = held_clean and journal.head() is not None
            detail = "swap failed post-append: journal ahead (legal)"
        else:  # serve.journal.write
            typed = (
                held_clean
                and result.reason == verdicts.ERR_IO
                and gate.journal_failures == 1
                and journal.head() is None
            )
            detail = f"torn append held publish, journal_failures={gate.journal_failures}"
        # With the fault gone the same delta must publish cleanly —
        # degradation, not wedging.
        recovered = gate.submit(zone)
        typed = typed and recovered.accepted
    return SiteOutcome(site, plan.fired.get(site, 0), result.verdict, detail,
                       typed=typed)


def fault_drill(version: str = "verified") -> FaultDrillReport:
    """Exercise every known injection site against ``version``."""
    report = FaultDrillReport(version)
    report.outcomes.append(_drill_compile(version))
    report.outcomes.append(_drill_solver(version))
    for site in (faults.SITE_CACHE_READ, faults.SITE_CACHE_WRITE,
                 faults.SITE_CACHE_CORRUPT):
        report.outcomes.append(_drill_cache(site, version))
    for site in (faults.SITE_WATCH_STAT, faults.SITE_WATCH_READ):
        report.outcomes.append(_drill_watch(site, version))
    for site in (faults.SITE_SERVE_UDP_RECV, faults.SITE_SERVE_UDP_SEND):
        report.outcomes.append(_drill_serve_udp(site, version))
    for site in (faults.SITE_SERVE_TCP_READ, faults.SITE_SERVE_TCP_WRITE):
        report.outcomes.append(_drill_serve_tcp(site, version))
    report.outcomes.append(_drill_serve_reload(version))
    for site in (faults.SITE_SERVE_GATE_VERIFY,
                 faults.SITE_SERVE_SNAPSHOT_SWAP,
                 faults.SITE_SERVE_JOURNAL_WRITE):
        report.outcomes.append(_drill_serve_gate(site, version))
    return report

"""Fault drill: drive every injection site to a typed verdict.

The resilience contract is that each site in
:data:`repro.resilience.faults.KNOWN_SITES` degrades to a *typed* outcome —
a :mod:`repro.resilience.verdicts` kind, a counted cache miss, or a watch
health event — never an uncaught exception. :func:`fault_drill` proves it
by running one small scenario per site under a scripted
:class:`~repro.resilience.faults.FaultPlan` and recording what the system
reported. The CI smoke job runs this via ``python -m repro faultdrill``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import List

from repro.resilience import faults
from repro.resilience import verdicts as verdicts_mod


@dataclass
class SiteOutcome:
    """What one injection site degraded to."""

    site: str
    fired: int
    verdict: str
    detail: str
    typed: bool  # the outcome was a typed verdict, not an escape

    def describe(self) -> str:
        status = "ok" if self.typed else "ESCAPED"
        return (
            f"{self.site:16s} fired={self.fired} -> {self.verdict} "
            f"[{status}] {self.detail}"
        )


@dataclass
class FaultDrillReport:
    """One drill over every known site."""

    version: str
    outcomes: List[SiteOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Every site fired at least once and produced a typed outcome."""
        covered = {o.site for o in self.outcomes}
        return set(faults.KNOWN_SITES) <= covered and all(
            o.typed and o.fired > 0 for o in self.outcomes
        )

    def describe(self) -> str:
        lines = [f"fault drill ({self.version}): "
                 f"{'clean' if self.clean else 'FAILURES'}"]
        lines.extend("  " + o.describe() for o in self.outcomes)
        return "\n".join(lines)


def _drill_compile(version: str) -> SiteOutcome:
    from repro.core.campaign import Campaign
    from repro.zonegen import corpus

    plan = faults.FaultPlan.scripted({faults.SITE_COMPILE: 1})
    with faults.active(plan):
        report = Campaign(zones=[corpus.minimal_zone()]).run(
            version, smoke_first=False
        )
    unit = report.verdicts[0]
    return SiteOutcome(
        faults.SITE_COMPILE,
        plan.fired.get(faults.SITE_COMPILE, 0),
        f"{unit.verdict}({unit.error_class})",
        unit.error_detail,
        typed=unit.verdict == verdicts_mod.ERROR
        and unit.error_class == verdicts_mod.ERR_COMPILE,
    )


def _drill_solver(version: str) -> SiteOutcome:
    from repro.core.pipeline import VerificationSession
    from repro.zonegen import corpus

    # Every check degrades to UNKNOWN; the pipeline must report an
    # UNKNOWN verdict instead of claiming a proof.
    plan = faults.FaultPlan.scripted({faults.SITE_SOLVER: 10_000})
    with faults.active(plan):
        result = VerificationSession(corpus.minimal_zone(), version).verify()
    reason = result.unknown_reason or "-"
    return SiteOutcome(
        faults.SITE_SOLVER,
        plan.fired.get(faults.SITE_SOLVER, 0),
        f"{result.verdict}({reason})",
        f"{result.solver_checks} checks degraded",
        typed=result.verdict == verdicts_mod.UNKNOWN,
    )


def _drill_cache(site: str, version: str) -> SiteOutcome:
    from repro.core.pipeline import VerificationSession
    from repro.incremental.cache import SummaryCache
    from repro.zonegen import corpus

    zone = corpus.minimal_zone()
    with tempfile.TemporaryDirectory() as tmp:
        cache = SummaryCache(cache_dir=tmp)
        if site == faults.SITE_CACHE_CORRUPT:
            # Corruption fires on *disk* reads, so the entries must exist
            # first — published by a separate cache instance, or the
            # in-memory layer would satisfy every lookup.
            VerificationSession(
                zone, version, cache=SummaryCache(cache_dir=tmp)
            ).verify()
        plan = faults.FaultPlan.scripted({site: 2})
        with faults.active(plan):
            result = VerificationSession(zone, version, cache=cache).verify()
        stats = cache.stats()
    counter = "corrupt" if site == faults.SITE_CACHE_CORRUPT else "io_errors"
    return SiteOutcome(
        site,
        plan.fired.get(site, 0),
        result.verdict,
        f"cache {counter}={stats[counter]}",
        typed=result.verdict == verdicts_mod.VERIFIED and stats[counter] > 0,
    )


def _drill_watch(site: str, version: str) -> SiteOutcome:
    import os

    from repro.dns.zonefile import zone_to_text
    from repro.incremental.watch import WatchDaemon
    from repro.resilience.supervise import RetryPolicy
    from repro.zonegen import corpus

    retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "zone.db")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(zone_to_text(corpus.minimal_zone()))
        daemon = WatchDaemon(
            path, version=version, retry=retry, sleep=lambda _delay: None,
            log=lambda _line: None,
        )
        if site == faults.SITE_WATCH_STAT:
            # Outlast the retry budget: the poll must degrade to a typed
            # failure event, not an escaped OSError.
            plan = faults.FaultPlan.scripted({site: 2})
        else:
            # One transient read fault: the retry must absorb it and the
            # poll still verify the zone.
            plan = faults.FaultPlan.scripted({site: 1})
        with faults.active(plan):
            event = daemon.poll_once()
    fired = plan.fired.get(site, 0)
    if event is None:
        return SiteOutcome(site, fired, "no-event", "", typed=False)
    if event.error is not None:
        return SiteOutcome(
            site, fired, f"{verdicts_mod.ERROR}({verdicts_mod.ERR_IO})",
            event.error, typed=site == faults.SITE_WATCH_STAT,
        )
    return SiteOutcome(
        site, fired, event.outcome.result.verdict,
        f"recovered after {event.health.get('attempts')} attempt(s)",
        typed=site == faults.SITE_WATCH_READ
        and event.outcome.result.verdict == verdicts_mod.VERIFIED,
    )


def fault_drill(version: str = "verified") -> FaultDrillReport:
    """Exercise every known injection site against ``version``."""
    report = FaultDrillReport(version)
    report.outcomes.append(_drill_compile(version))
    report.outcomes.append(_drill_solver(version))
    for site in (faults.SITE_CACHE_READ, faults.SITE_CACHE_WRITE,
                 faults.SITE_CACHE_CORRUPT):
        report.outcomes.append(_drill_cache(site, version))
    for site in (faults.SITE_WATCH_STAT, faults.SITE_WATCH_READ):
        report.outcomes.append(_drill_watch(site, version))
    return report

"""Randomized zone-configuration generation (paper sections 6.5 and 9).

The paper's scripts generate tens of thousands of zone configurations,
favouring complex domain names (wildcards at various positions) and
intertwined records (sub-domains, NS referrals, CNAME chains), so that the
concrete domain trees cover diverse matching scenarios. This subpackage is
that generator, plus a small corpus of hand-written zones the evaluation
benchmarks pin down.
"""

from repro.zonegen.generator import (
    ZoneGenerator,
    GeneratorConfig,
    generate_zone,
    tld_zone,
)
from repro.zonegen.corpus import (
    alias_zone,
    evaluation_zone,
    minimal_zone,
    paper_example_zone,
    chain_zone,
)
from repro.zonegen.mutate import MutationConfig, ZoneMutator, mutate_zone

__all__ = [
    "ZoneGenerator",
    "GeneratorConfig",
    "generate_zone",
    "tld_zone",
    "alias_zone",
    "evaluation_zone",
    "minimal_zone",
    "paper_example_zone",
    "chain_zone",
    "MutationConfig",
    "ZoneMutator",
    "mutate_zone",
]

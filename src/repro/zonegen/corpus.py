"""Hand-written zones the evaluation pins down.

``evaluation_zone`` is the canonical Table-2 workload: it exercises every
matching scenario the seeded bug classes need — apex answers, positive
answers with and without glue-bearing types, a CNAME (for extraneous-glue
and chase behaviour), a wildcard with both address and MX records (AA-flag
and wildcard-glue bugs), an empty non-terminal under the wildcard's parent
(ENT misjudgment and the dev crash), and a delegation with two NS targets
(incomplete referral glue).

``paper_example_zone`` reproduces the Figure 11 / Table 1 domain tree.
"""

from __future__ import annotations

from repro.dns.zone import Zone
from repro.dns.zonefile import parse_zone_text

EVALUATION_ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
ns2 IN A 192.0.2.2
ns2 IN AAAA 2001:db8::2
www IN A 192.0.2.10
www IN TXT "hello"
alias IN CNAME www
*.wild IN A 192.0.2.20
*.wild IN MX 10 ns2.example.com.
a.ent.wild IN TXT "below-ent"
sub IN NS ns1.sub
sub IN NS ns2.sub
ns1.sub IN A 192.0.2.40
ns2.sub IN A 192.0.2.41
"""

MINIMAL_ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.10
"""

#: The section 6.4 example: example.com with cs/www below it, web/zoo under
#: cs — the tree whose TreeSearch summarization Table 1 enumerates.
PAPER_EXAMPLE_ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.2
web.cs IN A 192.0.2.3
zoo.cs IN A 192.0.2.4
"""

#: CNAME chains, including one leaving the zone and a two-hop chain.
CHAIN_ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.2
one IN CNAME two
two IN CNAME www
external IN CNAME www.elsewhere.org.
*.wcname IN CNAME www
"""


#: The v4.0 feature zone: ALIAS flattening at the apex and at a host name,
#: including a dangling target and an out-of-zone target.
ALIAS_ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
@ IN ALIAS web.pool
@ IN MX 10 mail
ns1 IN A 192.0.2.1
mail IN A 192.0.2.5
web.pool IN A 192.0.2.50
web.pool IN A 192.0.2.51
web.pool IN AAAA 2001:db8::50
dangling IN ALIAS nothing.pool
external IN ALIAS cdn.elsewhere.org.
www IN CNAME web.pool
"""


def alias_zone() -> Zone:
    return parse_zone_text(ALIAS_ZONE_TEXT)


def evaluation_zone() -> Zone:
    return parse_zone_text(EVALUATION_ZONE_TEXT)


def minimal_zone() -> Zone:
    return parse_zone_text(MINIMAL_ZONE_TEXT)


def paper_example_zone() -> Zone:
    return parse_zone_text(PAPER_EXAMPLE_ZONE_TEXT)


def chain_zone() -> Zone:
    return parse_zone_text(CHAIN_ZONE_TEXT)

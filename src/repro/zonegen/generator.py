"""Correct-by-construction random zone generator.

Deterministic per ``(seed, index)``; every produced :class:`Zone` passes
zone validation by construction. The generator is biased the way the paper
describes (section 9): wildcards at various depths, delegations with one or
two glued nameservers, CNAMEs chaining inside and outside the zone, MX/SRV
records whose targets need additional-section processing, and deep names
that create empty non-terminals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from repro.dns.name import DnsName
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    MXRdata,
    NSRdata,
    SOARdata,
    SRVRdata,
    TXTRdata,
)
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone

_LABELS = [
    "a", "b", "c", "cs", "web", "www", "zoo", "mail", "app", "api",
    "dev", "ftp", "db", "cdn", "img", "eu", "us", "ap", "blog", "shop",
]


@dataclass
class GeneratorConfig:
    """Knobs for zone synthesis."""

    origin: str = "example.com."
    seed: int = 2023
    num_hosts: int = 5
    num_wildcards: int = 1
    num_delegations: int = 1
    num_cnames: int = 1
    num_mx: int = 1
    num_srv: int = 0
    max_depth: int = 3
    aaaa_probability: float = 0.3
    txt_probability: float = 0.3
    external_cname_probability: float = 0.25
    two_ns_probability: float = 0.5


class ZoneGenerator:
    """Streams deterministic random zones."""

    def __init__(self, config: Optional[GeneratorConfig] = None):
        self.config = config or GeneratorConfig()

    def generate(self, index: int = 0) -> Zone:
        cfg = self.config
        for attempt in range(8):
            rng = random.Random(f"{cfg.seed}:{index}:{attempt}")
            try:
                return self._build(rng)
            except ValueError:
                continue
        raise RuntimeError(f"zone generation failed for index {index}")

    def stream(self, count: int, start: int = 0) -> Iterator[Zone]:
        for index in range(start, start + count):
            yield self.generate(index)

    # -- construction ------------------------------------------------------

    def _build(self, rng: random.Random) -> Zone:
        cfg = self.config
        origin = DnsName.from_text(cfg.origin)
        records: List[ResourceRecord] = []
        taken: Set[DnsName] = set()
        blocked_subtrees: List[DnsName] = []  # delegated: only glue below
        cname_names: Set[DnsName] = set()
        ip_counter = [1]

        def next_ip() -> str:
            ip_counter[0] += 1
            return f"192.0.2.{ip_counter[0] % 254 + 1}"

        def next_ip6() -> str:
            ip_counter[0] += 1
            return f"2001:db8::{ip_counter[0]:x}"

        def usable(name: DnsName) -> bool:
            if name in taken or name in cname_names:
                return False
            if any(name.is_subdomain_of(b) for b in blocked_subtrees):
                return False
            if any(lab == "*" for lab in name.labels):
                return False
            return True

        def fresh_name(max_depth: int, min_depth: int = 1) -> DnsName:
            for _ in range(64):
                depth = rng.randint(min_depth, max_depth)
                labels = tuple(rng.choice(_LABELS) for _ in range(depth))
                name = DnsName(labels).concat(origin)
                if usable(name):
                    return name
            raise ValueError("could not place a fresh name")

        ns1 = DnsName.from_text("ns1", origin)
        records.append(
            ResourceRecord(
                origin,
                RRType.SOA,
                SOARdata(ns1, DnsName.from_text("admin", origin), rng.randint(1, 99)),
            )
        )
        records.append(ResourceRecord(origin, RRType.NS, NSRdata(ns1)))
        records.append(ResourceRecord(ns1, RRType.A, ARdata(next_ip())))
        taken.update([origin, ns1])

        hosts: List[DnsName] = [ns1]
        for _ in range(cfg.num_hosts):
            name = fresh_name(cfg.max_depth)
            taken.add(name)
            hosts.append(name)
            records.append(ResourceRecord(name, RRType.A, ARdata(next_ip())))
            if rng.random() < cfg.aaaa_probability:
                records.append(ResourceRecord(name, RRType.AAAA, AAAARdata(next_ip6())))
            if rng.random() < cfg.txt_probability:
                records.append(ResourceRecord(name, RRType.TXT, TXTRdata(f"host {name.labels[0]}")))

        for _ in range(cfg.num_delegations):
            cut = fresh_name(max(1, cfg.max_depth - 1))
            taken.add(cut)
            blocked_subtrees.append(cut)
            targets = [DnsName.from_text("ns1", cut)]
            if rng.random() < cfg.two_ns_probability:
                targets.append(DnsName.from_text("ns2", cut))
            for target in targets:
                records.append(ResourceRecord(cut, RRType.NS, NSRdata(target)))
                records.append(ResourceRecord(target, RRType.A, ARdata(next_ip())))
                taken.add(target)

        for _ in range(cfg.num_wildcards):
            parent = rng.choice([origin] + [h for h in hosts if len(h) < 8])
            if rng.random() < 0.5:
                try:
                    parent = fresh_name(max(1, cfg.max_depth - 1))
                    taken.add(parent)  # wildcard under an empty non-terminal
                except ValueError:
                    pass
            wild = parent.with_wildcard()
            if (
                wild in taken
                or wild in cname_names
                or any(wild.is_subdomain_of(b) for b in blocked_subtrees)
            ):
                continue
            taken.add(wild)
            kind = rng.choice(["a", "mx", "cname"])
            if kind == "a":
                records.append(ResourceRecord(wild, RRType.A, ARdata(next_ip())))
            elif kind == "mx":
                records.append(
                    ResourceRecord(wild, RRType.MX, MXRdata(10, rng.choice(hosts)))
                )
            else:
                cname_names.add(wild)
                records.append(
                    ResourceRecord(wild, RRType.CNAME, CNAMERdata(rng.choice(hosts)))
                )

        for _ in range(cfg.num_cnames):
            name = fresh_name(cfg.max_depth)
            cname_names.add(name)
            taken.add(name)
            if rng.random() < cfg.external_cname_probability:
                target = DnsName.from_text("www.elsewhere.org.")
            elif rng.random() < 0.3 and cname_names - {name}:
                target = rng.choice(sorted(cname_names - {name}))
            else:
                target = rng.choice(hosts)
            records.append(ResourceRecord(name, RRType.CNAME, CNAMERdata(target)))

        for _ in range(cfg.num_mx):
            owner = rng.choice([origin] + hosts)
            if owner in cname_names:
                continue
            records.append(
                ResourceRecord(owner, RRType.MX, MXRdata(rng.choice([10, 20]), rng.choice(hosts)))
            )

        for _ in range(cfg.num_srv):
            owner = fresh_name(cfg.max_depth)
            taken.add(owner)
            records.append(
                ResourceRecord(
                    owner, RRType.SRV, SRVRdata(0, 5, 5060, rng.choice(hosts))
                )
            )

        return Zone(origin, tuple(records))


def generate_zone(seed: int = 2023, index: int = 0, **overrides) -> Zone:
    """Convenience wrapper around :class:`ZoneGenerator`."""
    config = GeneratorConfig(seed=seed, **overrides)
    return ZoneGenerator(config).generate(index)


# -- TLD-shaped scale generation -------------------------------------------

_TLD_SYLLABLES = [
    "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na",
    "pe", "qi", "ro", "su", "ta", "ve", "wi", "xu", "yo", "zan",
]

#: (weight, shape, records emitted) — the registration mix of a real TLD:
#: overwhelmingly delegations (most with in-zone glue), a tail of hosted
#: names, CNAMEs into a hosting provider, MX-only domains, per-name
#: wildcards and deep empty-non-terminal names.
_TLD_SHAPES = (
    (0.55, "deleg_glue2", 4),
    (0.20, "deleg_ext", 2),
    (0.10, "host", 1),
    (0.06, "host_www", 2),
    (0.04, "cname", 1),
    (0.02, "mx", 1),
    (0.02, "wild", 2),
    (0.01, "deep", 1),
)

_BASE36 = "0123456789abcdefghijklmnopqrstuvwxyz"


def _base36(value: int) -> str:
    if value == 0:
        return "0"
    out = []
    while value:
        value, rem = divmod(value, 36)
        out.append(_BASE36[rem])
    return "".join(reversed(out))


def tld_zone(scale: int, seed: int = 2023, origin: str = "test.") -> Zone:
    """A TLD-shaped zone with exactly ``scale`` records.

    Deterministic and byte-for-byte reproducible per ``(scale, seed)``:
    one sequential ``random.Random(f"tld:{seed}")`` stream drives every
    choice, and the exact record count is hit by falling back to
    single-record hosts when the drawn shape would overshoot.

    The shape mix (:data:`_TLD_SHAPES`) is the point: each shape's
    registrations are behaviourally identical up to their own label and
    address payloads, so the zone has a *bounded* number of equivalence
    classes (~a dozen) no matter how many records it holds — the workload
    the equivalence-class planner exists for. Infrastructure is fixed:
    apex SOA + two NS into a ``nic`` operator subtree, a ``hosting``
    CNAME target, a ``mail`` MX target, and an apex wildcard TXT.
    """
    floor = 16
    if scale < floor:
        raise ValueError(f"TLD zones need at least {floor} records, got {scale}")
    rng = random.Random(f"tld:{seed}")
    origin_name = DnsName.from_text(origin)

    def sub(*labels: str) -> DnsName:
        return DnsName(tuple(labels)).concat(origin_name)

    ip_counter = [0]

    def next_ip() -> str:
        ip_counter[0] += 1
        value = ip_counter[0]
        return f"10.{(value >> 16) & 255}.{(value >> 8) & 255}.{value & 255}"

    ns1, ns2, nic = sub("ns1", "nic"), sub("ns2", "nic"), sub("nic")
    hosting, mail = sub("hosting"), sub("mail")
    records: List[ResourceRecord] = [
        ResourceRecord(
            origin_name, RRType.SOA, SOARdata(ns1, sub("admin", "nic"), 1)
        ),
        ResourceRecord(origin_name, RRType.NS, NSRdata(ns1)),
        ResourceRecord(origin_name, RRType.NS, NSRdata(ns2)),
        ResourceRecord(nic, RRType.A, ARdata(next_ip())),
        ResourceRecord(ns1, RRType.A, ARdata(next_ip())),
        ResourceRecord(ns2, RRType.A, ARdata(next_ip())),
        ResourceRecord(hosting, RRType.A, ARdata(next_ip())),
        ResourceRecord(mail, RRType.A, ARdata(next_ip())),
        ResourceRecord(
            origin_name.with_wildcard(), RRType.TXT, TXTRdata("tld wildcard")
        ),
    ]
    append = records.append
    index = 0
    while len(records) < scale:
        room = scale - len(records)
        roll = rng.random()
        shape = "host"
        acc = 0.0
        for weight, candidate, size in _TLD_SHAPES:
            acc += weight
            if roll < acc:
                shape = candidate if size <= room else "host"
                break
        top = (
            rng.choice(_TLD_SYLLABLES)
            + rng.choice(_TLD_SYLLABLES)
            + _base36(index)
        )
        index += 1
        owner = sub(top)
        if shape == "deleg_glue2":
            glue1, glue2 = sub("ns1", top), sub("ns2", top)
            append(ResourceRecord(owner, RRType.NS, NSRdata(glue1)))
            append(ResourceRecord(owner, RRType.NS, NSRdata(glue2)))
            append(ResourceRecord(glue1, RRType.A, ARdata(next_ip())))
            append(ResourceRecord(glue2, RRType.A, ARdata(next_ip())))
        elif shape == "deleg_ext":
            append(ResourceRecord(owner, RRType.NS, NSRdata(ns1)))
            append(ResourceRecord(owner, RRType.NS, NSRdata(ns2)))
        elif shape == "host_www":
            append(ResourceRecord(owner, RRType.A, ARdata(next_ip())))
            append(ResourceRecord(sub("www", top), RRType.A, ARdata(next_ip())))
        elif shape == "cname":
            append(ResourceRecord(owner, RRType.CNAME, CNAMERdata(hosting)))
        elif shape == "mx":
            append(ResourceRecord(owner, RRType.MX, MXRdata(10, mail)))
        elif shape == "wild":
            append(ResourceRecord(owner, RRType.A, ARdata(next_ip())))
            append(
                ResourceRecord(owner.with_wildcard(), RRType.A, ARdata(next_ip()))
            )
        elif shape == "deep":
            append(ResourceRecord(sub("a", "b", top), RRType.A, ARdata(next_ip())))
        else:
            append(ResourceRecord(owner, RRType.A, ARdata(next_ip())))
    return Zone(origin_name, tuple(records))

"""Correct-by-construction random zone generator.

Deterministic per ``(seed, index)``; every produced :class:`Zone` passes
zone validation by construction. The generator is biased the way the paper
describes (section 9): wildcards at various depths, delegations with one or
two glued nameservers, CNAMEs chaining inside and outside the zone, MX/SRV
records whose targets need additional-section processing, and deep names
that create empty non-terminals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from repro.dns.name import DnsName
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    MXRdata,
    NSRdata,
    SOARdata,
    SRVRdata,
    TXTRdata,
)
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone

_LABELS = [
    "a", "b", "c", "cs", "web", "www", "zoo", "mail", "app", "api",
    "dev", "ftp", "db", "cdn", "img", "eu", "us", "ap", "blog", "shop",
]


@dataclass
class GeneratorConfig:
    """Knobs for zone synthesis."""

    origin: str = "example.com."
    seed: int = 2023
    num_hosts: int = 5
    num_wildcards: int = 1
    num_delegations: int = 1
    num_cnames: int = 1
    num_mx: int = 1
    num_srv: int = 0
    max_depth: int = 3
    aaaa_probability: float = 0.3
    txt_probability: float = 0.3
    external_cname_probability: float = 0.25
    two_ns_probability: float = 0.5


class ZoneGenerator:
    """Streams deterministic random zones."""

    def __init__(self, config: Optional[GeneratorConfig] = None):
        self.config = config or GeneratorConfig()

    def generate(self, index: int = 0) -> Zone:
        cfg = self.config
        for attempt in range(8):
            rng = random.Random(f"{cfg.seed}:{index}:{attempt}")
            try:
                return self._build(rng)
            except ValueError:
                continue
        raise RuntimeError(f"zone generation failed for index {index}")

    def stream(self, count: int, start: int = 0) -> Iterator[Zone]:
        for index in range(start, start + count):
            yield self.generate(index)

    # -- construction ------------------------------------------------------

    def _build(self, rng: random.Random) -> Zone:
        cfg = self.config
        origin = DnsName.from_text(cfg.origin)
        records: List[ResourceRecord] = []
        taken: Set[DnsName] = set()
        blocked_subtrees: List[DnsName] = []  # delegated: only glue below
        cname_names: Set[DnsName] = set()
        ip_counter = [1]

        def next_ip() -> str:
            ip_counter[0] += 1
            return f"192.0.2.{ip_counter[0] % 254 + 1}"

        def next_ip6() -> str:
            ip_counter[0] += 1
            return f"2001:db8::{ip_counter[0]:x}"

        def usable(name: DnsName) -> bool:
            if name in taken or name in cname_names:
                return False
            if any(name.is_subdomain_of(b) for b in blocked_subtrees):
                return False
            if any(lab == "*" for lab in name.labels):
                return False
            return True

        def fresh_name(max_depth: int, min_depth: int = 1) -> DnsName:
            for _ in range(64):
                depth = rng.randint(min_depth, max_depth)
                labels = tuple(rng.choice(_LABELS) for _ in range(depth))
                name = DnsName(labels).concat(origin)
                if usable(name):
                    return name
            raise ValueError("could not place a fresh name")

        ns1 = DnsName.from_text("ns1", origin)
        records.append(
            ResourceRecord(
                origin,
                RRType.SOA,
                SOARdata(ns1, DnsName.from_text("admin", origin), rng.randint(1, 99)),
            )
        )
        records.append(ResourceRecord(origin, RRType.NS, NSRdata(ns1)))
        records.append(ResourceRecord(ns1, RRType.A, ARdata(next_ip())))
        taken.update([origin, ns1])

        hosts: List[DnsName] = [ns1]
        for _ in range(cfg.num_hosts):
            name = fresh_name(cfg.max_depth)
            taken.add(name)
            hosts.append(name)
            records.append(ResourceRecord(name, RRType.A, ARdata(next_ip())))
            if rng.random() < cfg.aaaa_probability:
                records.append(ResourceRecord(name, RRType.AAAA, AAAARdata(next_ip6())))
            if rng.random() < cfg.txt_probability:
                records.append(ResourceRecord(name, RRType.TXT, TXTRdata(f"host {name.labels[0]}")))

        for _ in range(cfg.num_delegations):
            cut = fresh_name(max(1, cfg.max_depth - 1))
            taken.add(cut)
            blocked_subtrees.append(cut)
            targets = [DnsName.from_text("ns1", cut)]
            if rng.random() < cfg.two_ns_probability:
                targets.append(DnsName.from_text("ns2", cut))
            for target in targets:
                records.append(ResourceRecord(cut, RRType.NS, NSRdata(target)))
                records.append(ResourceRecord(target, RRType.A, ARdata(next_ip())))
                taken.add(target)

        for _ in range(cfg.num_wildcards):
            parent = rng.choice([origin] + [h for h in hosts if len(h) < 8])
            if rng.random() < 0.5:
                try:
                    parent = fresh_name(max(1, cfg.max_depth - 1))
                    taken.add(parent)  # wildcard under an empty non-terminal
                except ValueError:
                    pass
            wild = parent.with_wildcard()
            if (
                wild in taken
                or wild in cname_names
                or any(wild.is_subdomain_of(b) for b in blocked_subtrees)
            ):
                continue
            taken.add(wild)
            kind = rng.choice(["a", "mx", "cname"])
            if kind == "a":
                records.append(ResourceRecord(wild, RRType.A, ARdata(next_ip())))
            elif kind == "mx":
                records.append(
                    ResourceRecord(wild, RRType.MX, MXRdata(10, rng.choice(hosts)))
                )
            else:
                cname_names.add(wild)
                records.append(
                    ResourceRecord(wild, RRType.CNAME, CNAMERdata(rng.choice(hosts)))
                )

        for _ in range(cfg.num_cnames):
            name = fresh_name(cfg.max_depth)
            cname_names.add(name)
            taken.add(name)
            if rng.random() < cfg.external_cname_probability:
                target = DnsName.from_text("www.elsewhere.org.")
            elif rng.random() < 0.3 and cname_names - {name}:
                target = rng.choice(sorted(cname_names - {name}))
            else:
                target = rng.choice(hosts)
            records.append(ResourceRecord(name, RRType.CNAME, CNAMERdata(target)))

        for _ in range(cfg.num_mx):
            owner = rng.choice([origin] + hosts)
            if owner in cname_names:
                continue
            records.append(
                ResourceRecord(owner, RRType.MX, MXRdata(rng.choice([10, 20]), rng.choice(hosts)))
            )

        for _ in range(cfg.num_srv):
            owner = fresh_name(cfg.max_depth)
            taken.add(owner)
            records.append(
                ResourceRecord(
                    owner, RRType.SRV, SRVRdata(0, 5, 5060, rng.choice(hosts))
                )
            )

        return Zone(origin, tuple(records))


def generate_zone(seed: int = 2023, index: int = 0, **overrides) -> Zone:
    """Convenience wrapper around :class:`ZoneGenerator`."""
    config = GeneratorConfig(seed=seed, **overrides)
    return ZoneGenerator(config).generate(index)

"""Seeded delta-mutation of existing zones.

The campaign service exercises two verification paths: from-scratch
proofs of freshly generated zones, and *incremental* re-verification of a
mutated zone against its predecessor (:meth:`IncrementalVerifier.diff_to`).
This module supplies the second input: a :class:`ZoneMutator` that applies
a small, seeded edit script — record adds, removes and rdata rewrites —
to a valid zone and returns another valid zone.

Determinism contract (the campaign's resume path depends on it): the
mutated zone is a pure function of ``(config.seed, index, zone content)``.
The PRNG is seeded from the zone's content digest rather than any
process-local identity (``id()``, ``hash()`` — both vary across
interpreter runs), so identical seeds reproduce identical mutants
byte-for-byte in any process, under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.dns.name import DnsName
from repro.dns.rdata import ARdata, CNAMERdata, MXRdata, NSRdata, TXTRdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone, ZoneValidationError
from repro.incremental.digest import zone_digest
from repro.zonegen.generator import _LABELS

#: Mutation operators, drawn by weight. Adds are biased toward the
#: adversarial record families (wildcards, CNAMEs, delegations — the §9
#: intertwinings) so that mutation chains drift toward the interesting
#: corner of the zone space rather than away from it.
_OPS = (
    ("add-host", 3),
    ("add-wildcard", 2),
    ("add-cname", 2),
    ("add-delegation", 1),
    ("delete-record", 3),
    ("rewrite-address", 2),
)


@dataclass
class MutationConfig:
    """Knobs for one mutation stream."""

    seed: int = 2023
    #: Edit-script length bounds per mutant (each op is one add/remove/
    #: rewrite; a rewrite counts as one op but two delta changes).
    min_changes: int = 1
    max_changes: int = 3


class ZoneMutator:
    """Applies seeded record-level deltas to existing zones."""

    def __init__(self, config: Optional[MutationConfig] = None):
        self.config = config or MutationConfig()

    def mutate(self, zone: Zone, index: int = 0) -> Zone:
        """A valid mutant of ``zone``, deterministic per
        ``(seed, index, zone content)``. Guaranteed to differ from the
        input (the campaign's incremental units need a non-empty delta).
        """
        cfg = self.config
        rng = random.Random(f"{cfg.seed}:{index}:{zone_digest(zone)}")
        ops = rng.randint(cfg.min_changes, cfg.max_changes)
        current = zone
        applied = 0
        # Each op attempt draws from the PRNG whether it lands or not, so
        # the stream position — and therefore every later draw — depends
        # only on the seed material, never on wall clock or retry timing.
        for _attempt in range(16 * ops):
            if applied >= ops:
                break
            op = _pick_op(rng)
            mutated = _apply_op(current, op, rng)
            if mutated is not None:
                current = mutated
                applied += 1
        if current is zone:
            # Pathological zone where nothing landed: force the one op
            # that cannot fail (a fresh host at a fresh name).
            forced = _apply_op(current, "add-host", rng)
            if forced is None:  # pragma: no cover - add-host retries names
                raise RuntimeError("zone mutation failed to land any change")
            current = forced
        return current

    def stream(self, zone: Zone, count: int, start: int = 0) -> List[Zone]:
        """A chain of mutants: each element mutates its predecessor."""
        chain: List[Zone] = []
        current = zone
        for index in range(start, start + count):
            current = self.mutate(current, index)
            chain.append(current)
        return chain


def mutate_zone(zone: Zone, seed: int = 2023, index: int = 0,
                **overrides) -> Zone:
    """Convenience wrapper around :class:`ZoneMutator`."""
    return ZoneMutator(MutationConfig(seed=seed, **overrides)).mutate(zone, index)


# -- operator implementations ------------------------------------------------


def _pick_op(rng: random.Random) -> str:
    names = [name for name, _ in _OPS]
    weights = [weight for _, weight in _OPS]
    return rng.choices(names, weights=weights, k=1)[0]


def _rebuild(zone: Zone, records: List[ResourceRecord]) -> Optional[Zone]:
    """A new :class:`Zone` when the record set validates, else None (the
    op draws again)."""
    try:
        return Zone(zone.origin, tuple(records))
    except ZoneValidationError:
        return None


def _fresh_name(zone: Zone, rng: random.Random,
                depth_max: int = 3) -> Optional[DnsName]:
    existing = set(zone.names())
    for _ in range(24):
        depth = rng.randint(1, depth_max)
        labels = tuple(rng.choice(_LABELS) for _ in range(depth))
        name = DnsName(labels).concat(zone.origin)
        if name not in existing:
            return name
    return None


def _hosts_of(zone: Zone) -> List[DnsName]:
    return sorted({rec.rname for rec in zone.records
                   if rec.rtype is RRType.A and not rec.rname.is_wildcard})


def _next_ip(rng: random.Random) -> str:
    return f"192.0.2.{rng.randint(1, 254)}"


def _apply_op(zone: Zone, op: str, rng: random.Random) -> Optional[Zone]:
    records = list(zone.records)
    if op == "add-host":
        name = _fresh_name(zone, rng)
        if name is None:
            return None
        records.append(ResourceRecord(name, RRType.A, ARdata(_next_ip(rng))))
        if rng.random() < 0.3:
            records.append(ResourceRecord(
                name, RRType.TXT, TXTRdata(f"mut {name.labels[0]}")))
        return _rebuild(zone, records)

    if op == "add-wildcard":
        parent = _fresh_name(zone, rng, depth_max=2)
        if parent is None:
            return None
        wild = parent.with_wildcard()
        hosts = _hosts_of(zone)
        kind = rng.choice(["a", "mx", "cname"]) if hosts else "a"
        if kind == "a":
            records.append(ResourceRecord(wild, RRType.A, ARdata(_next_ip(rng))))
        elif kind == "mx":
            records.append(ResourceRecord(
                wild, RRType.MX, MXRdata(10, rng.choice(hosts))))
        else:
            records.append(ResourceRecord(
                wild, RRType.CNAME, CNAMERdata(rng.choice(hosts))))
        return _rebuild(zone, records)

    if op == "add-cname":
        name = _fresh_name(zone, rng)
        hosts = _hosts_of(zone)
        if name is None or not hosts:
            return None
        if rng.random() < 0.25:
            target = DnsName.from_text("www.elsewhere.org.")
        else:
            target = rng.choice(hosts)
        records.append(ResourceRecord(name, RRType.CNAME, CNAMERdata(target)))
        return _rebuild(zone, records)

    if op == "add-delegation":
        cut = _fresh_name(zone, rng, depth_max=2)
        if cut is None:
            return None
        target = DnsName.from_text("ns1", cut)
        records.append(ResourceRecord(cut, RRType.NS, NSRdata(target)))
        records.append(ResourceRecord(target, RRType.A, ARdata(_next_ip(rng))))
        return _rebuild(zone, records)

    if op == "delete-record":
        # Never touch the SOA or the apex NS set (structurally required);
        # everything else is fair game — validation vetoes removals that
        # would strand the zone (the op then simply fails to land).
        candidates = [
            rec for rec in records
            if rec.rtype is not RRType.SOA
            and not (rec.rtype is RRType.NS and rec.rname == zone.origin)
        ]
        if not candidates:
            return None
        victim = rng.choice(sorted(candidates, key=ResourceRecord.sort_key))
        records.remove(victim)
        return _rebuild(zone, records)

    if op == "rewrite-address":
        candidates = [rec for rec in records if rec.rtype is RRType.A]
        if not candidates:
            return None
        victim = rng.choice(sorted(candidates, key=ResourceRecord.sort_key))
        replacement = ResourceRecord(
            victim.rname, RRType.A, ARdata(_next_ip(rng)))
        if replacement == victim:
            return None
        records[records.index(victim)] = replacement
        return _rebuild(zone, records)

    raise ValueError(f"unknown mutation op {op!r}")  # pragma: no cover

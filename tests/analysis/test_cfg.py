"""Golden tests for the CFG and dominator tree on hand-written IR."""

from repro.analysis import CFG
from repro.ir import Br, CondBr, ConstBool, Function, Ret
from repro.ir.types import VOID


def diamond():
    """entry -> {left, right} -> merge."""
    fn = Function("diamond", [], VOID)
    entry = fn.new_block("entry")
    left = fn.new_block("left")
    right = fn.new_block("right")
    merge = fn.new_block("merge")
    entry.terminate(CondBr(ConstBool(True), left.label, right.label))
    left.terminate(Br(merge.label))
    right.terminate(Br(merge.label))
    merge.terminate(Ret())
    return fn, entry, left, right, merge


def loop():
    """entry -> header -> {body -> header, exit}."""
    fn = Function("loop", [], VOID)
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    entry.terminate(Br(header.label))
    header.terminate(CondBr(ConstBool(True), body.label, exit_.label))
    body.terminate(Br(header.label))
    exit_.terminate(Ret())
    return fn, entry, header, body, exit_


class TestCFG:
    def test_diamond_edges(self):
        fn, entry, left, right, merge = diamond()
        cfg = CFG(fn)
        assert cfg.succs[entry.label] == (left.label, right.label)
        assert sorted(cfg.preds[merge.label]) == sorted([left.label, right.label])

    def test_rpo_starts_at_entry_and_covers_reachable(self):
        fn, entry, left, right, merge = diamond()
        cfg = CFG(fn)
        assert cfg.rpo[0] == entry.label
        assert set(cfg.rpo) == {entry.label, left.label, right.label, merge.label}
        # A predecessor always precedes its (non-back-edge) successor.
        assert cfg.rpo_index[entry.label] < cfg.rpo_index[left.label]
        assert cfg.rpo_index[left.label] < cfg.rpo_index[merge.label]

    def test_unreachable_block_detected(self):
        fn, entry, left, right, merge = diamond()
        orphan = fn.new_block("orphan")
        orphan.terminate(Ret())
        cfg = CFG(fn)
        assert cfg.unreachable() == [orphan.label]
        assert orphan.label not in cfg.reachable


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, left, right, merge = diamond()
        cfg = CFG(fn)
        assert cfg.idom[entry.label] is None
        assert cfg.idom[left.label] == entry.label
        assert cfg.idom[right.label] == entry.label
        # Neither branch arm dominates the merge; only the entry does.
        assert cfg.idom[merge.label] == entry.label

    def test_diamond_dominator_tree_golden(self):
        fn, entry, left, right, merge = diamond()
        cfg = CFG(fn)
        tree = cfg.dominator_tree()
        assert sorted(tree[entry.label]) == sorted(
            [left.label, right.label, merge.label]
        )
        assert tree[left.label] == []
        assert tree[right.label] == []
        assert tree[merge.label] == []

    def test_loop_idoms_golden(self):
        fn, entry, header, body, exit_ = loop()
        cfg = CFG(fn)
        assert cfg.idom[header.label] == entry.label
        assert cfg.idom[body.label] == header.label
        assert cfg.idom[exit_.label] == header.label

    def test_dominates_is_reflexive_and_respects_paths(self):
        fn, entry, header, body, exit_ = loop()
        cfg = CFG(fn)
        assert cfg.dominates(header.label, header.label)
        assert cfg.dominates(entry.label, exit_.label)
        assert cfg.dominates(header.label, body.label)
        assert not cfg.dominates(body.label, exit_.label)

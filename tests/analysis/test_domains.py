"""Golden tests for the abstract domains: DiffBounds arithmetic, and
interval/nullness fixpoints over hand-written IR."""

import pytest

from repro.analysis import CFG, DiffBounds, GuardDomain, Interval, analyze
from repro.analysis.domains import MAYBE, NONNULL, NULL, ZERO, interval_of, nullness_of
from repro.ir import (
    Alloca,
    BinOp,
    Br,
    CondBr,
    ConstInt,
    ConstNull,
    Function,
    ICmp,
    Load,
    Register,
    Ret,
    Store,
)
from repro.ir.types import BOOL, INT, PointerType, VOID


class TestDiffBounds:
    def test_constant_bounds_via_zero_anchor(self):
        db = DiffBounds()
        assert db.add("x", ZERO, 5)       # x <= 5
        assert db.add(ZERO, "x", 0)       # x >= 0
        assert db.interval_of("x") == Interval(0, 5)

    def test_transitive_closure_is_incremental(self):
        db = DiffBounds()
        assert db.add("x", "y", 0)        # x <= y
        assert db.add("y", ZERO, 3)       # y <= 3
        # x <= 3 must be derivable without an explicit closure call.
        assert db.entails("x", ZERO, 3)
        assert db.interval_of("x") == Interval(None, 3)

    def test_contradiction_reports_infeasible(self):
        db = DiffBounds()
        assert db.add("x", ZERO, 2)       # x <= 2
        assert not db.add(ZERO, "x", -3)  # x >= 3: infeasible

    def test_join_is_pointwise_max(self):
        a = DiffBounds()
        a.add("x", ZERO, 2)       # x in [0, 2]
        a.add(ZERO, "x", 0)
        b = DiffBounds()
        b.add("x", ZERO, 7)       # x in [1, 7]
        b.add(ZERO, "x", -1)
        j = a.join(b)
        assert j.interval_of("x") == Interval(0, 7)

    def test_kill_forgets_only_one_variable(self):
        db = DiffBounds()
        db.add("x", ZERO, 1)
        db.add("y", ZERO, 2)
        db.kill("x")
        assert db.interval_of("x") == Interval()
        assert db.interval_of("y") == Interval(None, 2)


def branch_on_compare():
    """f(n): if n < 10 then A else B."""
    fn = Function("f", [("n", INT)], VOID)
    entry = fn.new_block("entry")
    then = fn.new_block("then")
    other = fn.new_block("else")
    c = Register("c")
    entry.append(ICmp(c, "slt", Register("n"), ConstInt(10)))
    entry.terminate(CondBr(c, then.label, other.label))
    then.terminate(Ret())
    other.terminate(Ret())
    return fn, then.label, other.label


def nil_check():
    """g(p): if p == nil then A else B."""
    ptr_t = PointerType(INT)
    fn = Function("g", [("p", ptr_t)], VOID)
    entry = fn.new_block("entry")
    isnil = fn.new_block("isnil")
    notnil = fn.new_block("notnil")
    c = Register("c")
    entry.append(ICmp(c, "eq", Register("p"), ConstNull()))
    entry.terminate(CondBr(c, isnil.label, notnil.label))
    isnil.terminate(Ret())
    notnil.terminate(Ret())
    return fn, isnil.label, notnil.label


def counting_loop():
    """h(n): i = 0; while i < n: i += 1."""
    fn = Function("h", [("n", INT)], VOID)
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    exit_ = fn.new_block("exit")
    slot = Register("i.slot")
    entry.append(Alloca(slot, INT))
    entry.append(Store(ConstInt(0), slot))
    entry.terminate(Br(header.label))
    iv = Register("iv")
    c = Register("c")
    header.append(Load(iv, slot))
    header.append(ICmp(c, "slt", iv, Register("n")))
    header.terminate(CondBr(c, body.label, exit_.label))
    iv2 = Register("iv2")
    inext = Register("inext")
    body.append(Load(iv2, slot))
    body.append(BinOp(inext, "add", iv2, ConstInt(1)))
    body.append(Store(inext, slot))
    body.terminate(Br(header.label))
    exit_.terminate(Ret())
    return fn, slot.name, body.label, exit_.label


def run(fn):
    cfg = CFG(fn)
    return analyze(fn, GuardDomain(cfg), cfg=cfg), cfg


class TestIntervalFixpoint:
    def test_compare_refines_both_edges(self):
        fn, then_label, else_label = branch_on_compare()
        result, _ = run(fn)
        then_state = result.state_at_terminator(then_label)
        else_state = result.state_at_terminator(else_label)
        assert interval_of(then_state, "n") == Interval(None, 9)
        assert interval_of(else_state, "n") == Interval(10, None)

    def test_loop_counter_golden(self):
        fn, slot, body_label, exit_label = counting_loop()
        result, _ = run(fn)
        body_state = result.state_at_terminator(body_label)
        exit_state = result.state_at_terminator(exit_label)
        # At the body terminator the slot holds i+1: at least 1, no upper
        # constant bound (the bound n is symbolic).
        assert interval_of(body_state, slot) == Interval(1, None)
        # At exit the counter keeps its loop invariant lower bound.
        assert interval_of(exit_state, slot) == Interval(0, None)

    def test_loaded_counter_bounded_below_in_body(self):
        fn, slot, body_label, _ = counting_loop()
        result, _ = run(fn)
        body_state = result.state_at_terminator(body_label)
        assert interval_of(body_state, "iv2").lo == 0


class TestNullnessFixpoint:
    def test_nil_test_refines_both_edges(self):
        fn, isnil_label, notnil_label = nil_check()
        result, _ = run(fn)
        assert nullness_of(result.state_at_terminator(isnil_label), "p") == NULL
        assert nullness_of(result.state_at_terminator(notnil_label), "p") == NONNULL

    def test_unrefined_pointer_is_maybe(self):
        fn, _, _ = nil_check()
        result, _ = run(fn)
        # Walk the entry block: before the test the parameter is unknown.
        entry_label = fn.entry_label
        state = result.state_at_terminator(entry_label)
        assert nullness_of(state, "p") == MAYBE

"""Golden tests for the interprocedural layer: the relational domain's
transfer machinery (difference bounds, closure, join/widen), call-graph
ordering, and the function summaries extracted from the real GoPy
library modules.

These pin exact facts, not just "something was proved": the pruning
pass's discharge ratio rests on ``is_prefix`` and ``shared_prefix_len``
summarizing to precisely these constraints, so a silent extraction
regression should fail here first, with a readable diff.
"""

import pytest

from repro.analysis.domains import DiffBounds, Interval, ZERO
from repro.analysis.interproc import (
    CallGraph,
    compute_summaries,
    summaries_digest,
)
from repro.engine.gopy import nameops, respops
from repro.frontend import compile_module, compile_source


# ---------------------------------------------------------------------------
# Difference-bound transfer functions
# ---------------------------------------------------------------------------


class TestDiffBounds:
    def test_add_closes_transitively(self):
        d = DiffBounds()
        assert d.add("a", "b", 2)
        assert d.add("b", "c", 3)
        # Closure: a - c <= 5 must be derived, not just stored edges.
        assert d.entails("a", "c", 5)
        assert not d.entails("a", "c", 4)

    def test_add_detects_infeasibility(self):
        d = DiffBounds()
        assert d.add("a", "b", -1)   # a < b
        assert not d.add("b", "a", -1)  # and b < a: empty

    def test_join_is_pointwise_max_over_common_keys(self):
        left = DiffBounds({("a", "b"): 1, ("a", "c"): 7})
        right = DiffBounds({("a", "b"): 4})
        joined = left.join(right)
        assert joined.bound("a", "b") == 4      # looser of the two
        assert joined.bound("a", "c") is None   # only on one side: dropped

    def test_kill_forgets_every_edge_through_a_var(self):
        d = DiffBounds({("a", "b"): 1, ("b", "c"): 2, ("a", "c"): 3})
        d.kill("b")
        assert d.bound("a", "b") is None
        assert d.bound("b", "c") is None
        assert d.bound("a", "c") == 3  # closure survives the kill

    def test_interval_projects_through_zero(self):
        d = DiffBounds()
        d.add("x", ZERO, 9)   # x <= 9
        d.add(ZERO, "x", 0)   # x >= 0
        assert d.interval_of("x") == Interval(0, 9)


class TestIntervalLattice:
    def test_join_takes_the_hull(self):
        assert Interval(0, 3).join(Interval(2, 9)) == Interval(0, 9)

    def test_widen_drops_only_the_moving_bound(self):
        old, new = Interval(0, 3), Interval(0, 9)
        assert old.widen(new) == Interval(0, None)
        assert old.widen(Interval(-1, 3)) == Interval(None, 3)


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


TOY = """
def leaf(n: int) -> int:
    return n + 1

def middle(n: int) -> int:
    return leaf(n)

def top(n: int) -> int:
    return middle(n)

def spin(n: int) -> int:
    if n <= 0:
        return 0
    return spin(n - 1)
"""


class TestCallGraph:
    def test_sccs_come_out_callee_first(self):
        graph = CallGraph([compile_source(TOY, name="toy")])
        order = [name for scc in graph.sccs_bottom_up() for name in scc]
        assert order.index("leaf") < order.index("middle") < order.index("top")

    def test_self_recursion_is_a_recursive_component(self):
        graph = CallGraph([compile_source(TOY, name="toy")])
        by_member = {name: scc for scc in graph.sccs_bottom_up()
                     for name in scc}
        assert graph.is_recursive(by_member["spin"])
        assert not graph.is_recursive(by_member["leaf"])


# ---------------------------------------------------------------------------
# Summaries: golden facts on the real library modules
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def nameops_summaries():
    return compute_summaries([compile_module(nameops)])


class TestGoldenSummaries:
    def test_is_prefix_true_branch_relates_the_label_lengths(
            self, nameops_summaries):
        s = nameops_summaries["is_prefix"]
        assert s.pure and s.ret_kind == "bool" and not s.havocked
        # True means len(a) <= len(b) (the discharge workhorse), plus
        # both lengths are non-negative ('' is the zero token).
        assert s.true_facts == (
            ("", "len0", 0), ("", "len1", 0), ("len0", "len1", 0),
        )
        # False still bounds the lengths: a non-empty a, a valid b.
        assert s.false_facts == (("", "len0", -1), ("", "len1", 0))
        assert s.may_true and s.may_false

    def test_shared_prefix_len_returns_a_non_negative_int(
            self, nameops_summaries):
        s = nameops_summaries["shared_prefix_len"]
        assert s.pure and s.ret_kind == "int" and not s.havocked
        assert ("", "ret", 0) in s.ret_facts  # ret >= 0

    def test_respops_accessors_are_append_pure(self):
        summaries = compute_summaries([compile_module(respops)])
        assert set(summaries) == {
            "resp_set_rcode", "resp_set_aa", "sr_set_kind", "sr_set_node",
        }
        for s in summaries.values():
            # Purity is what keeps the caller's list epoch alive across
            # the accessor calls the verified engine now makes.
            assert s.pure and not s.havocked

    def test_ret_facts_flow_through_a_call_site(self):
        mod = compile_source(
            """
def clamp(n: int) -> int:
    if n < 0:
        return 0
    return n

def through(n: int) -> int:
    m = clamp(n)
    return m
""",
            name="toy",
        )
        summaries = compute_summaries([mod])
        golden = (("", "ret", 0), ("arg0", "ret", 0))  # 0 <= ret <= n
        assert summaries["clamp"].ret_facts == golden
        # The caller inherits the callee's bounds via summary application
        # — with havoc-at-calls its ret_facts would be empty.
        assert summaries["through"].ret_facts == golden

    def test_recursive_functions_are_havocked_not_mis_summarized(self):
        summaries = compute_summaries([compile_source(TOY, name="toy")])
        assert summaries["spin"].havocked
        assert summaries["spin"].ret_facts == ()
        assert not summaries["leaf"].havocked


class TestSummaryDigest:
    def test_digest_is_deterministic(self):
        a = compute_summaries([compile_module(nameops)])
        b = compute_summaries([compile_module(nameops)])
        assert summaries_digest(a) == summaries_digest(b)

    def test_digest_distinguishes_summary_tables(self):
        a = compute_summaries([compile_module(nameops)])
        b = compute_summaries([compile_module(respops)])
        assert summaries_digest(a) != summaries_digest(b)

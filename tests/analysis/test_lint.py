"""The GoPy linter: rules fire on the smells they name, ids stay stable,
and baselines grandfather exactly what they recorded."""

import importlib.util
import sys

import pytest

from repro.analysis import lint_version, lint_versions, new_findings
from repro.analysis.lint import (
    RULES,
    Finding,
    baseline_counts,
    lint_module,
    load_baseline,
    save_baseline,
)


def _load_gopy(tmp_path, name, source):
    """Import a throwaway GoPy module from a real file (the linter and
    the frontend both read sources via ``inspect.getsource``)."""
    path = tmp_path / f"{name}.py"
    path.write_text(source)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestRuleCatalog:
    def test_every_rule_has_a_stable_id_and_description(self):
        assert set(RULES) == {
            "GP101", "GP201", "GP202", "GP203", "GP301", "GP302", "GP303",
            "GP401", "GP402", "GP403",
        }
        for rule, description in RULES.items():
            assert rule.startswith("GP") and description

    def test_finding_renders_shared_diagnostic_shape(self):
        f = Finding("GP301", "engine.py", 12, 4, "dev", "find", "msg", "X.y")
        assert f.format() == "engine.py:12:4: GP301: msg"
        assert f.baseline_key() == "dev:find:GP301:X.y"


class TestAntiModularityRules:
    def test_dev_flags_control_flags_and_exposed_fields(self):
        findings = lint_version("dev")
        rules = {f.rule for f in findings}
        assert "GP301" in rules and "GP302" in rules
        keys = {f.baseline_key() for f in findings}
        # The Figure 3 smells, by stable key: wildcard-synthesis control
        # flags and raw SearchResult/Response field writes.
        assert "dev:append_matching:GP302:synth" in keys
        assert "dev:answer_node:GP302:synth" in keys
        assert "dev:make_referral:GP302:at_top" in keys
        assert "dev:tree_search:GP301:SearchResult.kind" in keys
        assert "dev:make_referral:GP301:Response.aa" in keys

    def test_v3_0_flags_direct_stack_indexing(self):
        findings = lint_version("v3.0")
        keys = {f.baseline_key() for f in findings}
        assert "v3_0:find:GP303:NodeStack.nodes" in keys
        assert "v3_0:find:GP303:NodeStack.level" in keys

    def test_other_versions_do_not_flag_stack_indexing(self):
        for version in ("dev", "verified"):
            keys = {f.baseline_key() for f in lint_version(version)}
            assert not any(":GP303:NodeStack" in k for k in keys), version

    def test_owner_module_may_touch_its_own_fields(self):
        findings = lint_version("verified")
        assert not any(
            f.module == "nodestack" and f.rule in ("GP301", "GP303")
            for f in findings
        )


class TestDeadCodeRules:
    def test_statement_after_return_is_gp203(self, tmp_path):
        module = _load_gopy(tmp_path, "lint_dead", (
            "def f(a: int) -> int:\n"
            "    return a\n"
            "    a = a + 1\n"
            "    return a\n"
        ))
        findings = lint_module(module)
        gp203 = [f for f in findings if f.rule == "GP203"]
        assert len(gp203) == 1
        assert gp203[0].line == 3
        assert gp203[0].function == "f"

    def test_clean_function_is_clean(self, tmp_path):
        module = _load_gopy(tmp_path, "lint_clean", (
            "def f(a: int) -> int:\n"
            "    if a > 0:\n"
            "        return a\n"
            "    return 0 - a\n"
        ))
        assert lint_module(module) == []


class TestIRRules:
    def test_unreachable_block_is_gp201(self):
        from repro.analysis.lint import _lint_function_ir
        from repro.ir import Br, Function, Ret
        from repro.ir.types import VOID

        fn = Function("f", [], VOID)
        entry = fn.new_block("entry")
        orphan = fn.new_block("orphan")
        entry.terminate(Ret())
        orphan.terminate(Ret())
        findings = _lint_function_ir(fn, "m", "m.py")
        assert [f.rule for f in findings] == ["GP201"]
        assert findings[0].detail == f"block-{orphan.label}"

    def test_use_before_def_is_gp202(self):
        from repro.analysis.lint import _lint_function_ir
        from repro.ir import (
            Alloca, Br, CondBr, ConstBool, ConstInt, Function, Load,
            Register, Ret, Store,
        )
        from repro.ir.types import INT, VOID

        fn = Function("f", [], VOID)
        entry = fn.new_block("entry")
        init = fn.new_block("init")
        use = fn.new_block("use")
        slot = Register("v")
        entry.append(Alloca(slot, INT))
        entry.terminate(CondBr(ConstBool(True), init.label, use.label))
        init.append(Store(ConstInt(1), slot))
        init.terminate(Br(use.label))
        use.append(Load(Register("x"), slot))
        use.terminate(Ret())
        findings = _lint_function_ir(fn, "m", "m.py")
        assert [f.rule for f in findings] == ["GP202"]
        assert findings[0].detail == "v"

    def test_definitely_assigned_slot_is_not_flagged(self):
        from repro.analysis.lint import _lint_function_ir
        from repro.ir import Alloca, ConstInt, Function, Load, Register, Ret, Store
        from repro.ir.types import INT, VOID

        fn = Function("f", [], VOID)
        entry = fn.new_block("entry")
        slot = Register("v")
        entry.append(Alloca(slot, INT))
        entry.append(Store(ConstInt(1), slot))
        entry.append(Load(Register("x"), slot))
        entry.terminate(Ret())
        assert _lint_function_ir(fn, "m", "m.py") == []

    def test_subset_violation_is_gp101_not_an_exception(self, tmp_path):
        module = _load_gopy(tmp_path, "lint_subset", (
            "def f(a: int) -> int:\n"
            "    return [x for x in range(a)][0]\n"
        ))
        findings = lint_module(module)
        assert any(f.rule == "GP101" for f in findings)


class TestBaselines:
    def test_roundtrip_and_gating(self, tmp_path):
        findings = lint_version("dev")
        assert findings
        path = tmp_path / "baseline.json"
        save_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        assert baseline == baseline_counts(findings)
        # Everything grandfathered: nothing new.
        assert new_findings(findings, baseline) == []

    def test_new_key_and_count_regressions_are_caught(self):
        findings = lint_version("dev")
        baseline = baseline_counts(findings)
        # Remove one grandfathered key: exactly its findings become new.
        victim = findings[0].baseline_key()
        short = dict(baseline)
        removed = short.pop(victim)
        fresh = new_findings(findings, short)
        assert len(fresh) == removed
        assert all(f.baseline_key() == victim for f in fresh)

    def test_baseline_keys_carry_no_line_numbers(self):
        for finding in lint_version("dev"):
            assert str(finding.line) not in finding.baseline_key().split(":")


class TestVersionSweep:
    def test_lint_versions_dedupes_shared_modules(self):
        single = {f.baseline_key() for f in lint_version("dev")}
        both = lint_versions(["dev", "verified"])
        keys = [
            (f.baseline_key(), f.line) for f in both
        ]
        assert len(keys) == len(set(keys))
        shared = [k for k, _ in keys if k.startswith("nameops:")]
        shared_single = [k for k in single if k.startswith("nameops:")]
        assert sorted(set(shared)) == sorted(shared_single)

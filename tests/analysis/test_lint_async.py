"""The GP4xx async-safety pack, exercised on synthetic sources.

Each test feeds a small module through :func:`lint_runtime_source` and
checks both directions: the smell fires where it should, and the
idiomatic fixes (lock regions, atomic increments, fsync-before-replace)
stay clean. The final test pins the real serving/campaign planes at zero
findings — the pack gates CI, so a regression here is a regression in
the product code, not the linter.
"""

import ast
import textwrap

from repro.analysis.lint_async import lint_runtime, lint_runtime_source


def findings_for(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return lint_runtime_source(tree, "synthetic", "<synthetic>")


def keys(findings):
    return {f.baseline_key() for f in findings}


class TestGP401BlockingCalls:
    def test_blocking_call_in_async_def_fires(self):
        found = findings_for("""
            import time

            async def bad_block():
                time.sleep(1)
        """)
        assert keys(found) == {"synthetic:bad_block:GP401:time.sleep"}

    def test_one_finding_per_blocking_name_not_per_call(self):
        found = findings_for("""
            import time

            async def drains():
                time.sleep(1)
                time.sleep(2)
        """)
        assert len(found) == 1

    def test_sync_def_and_to_thread_are_clean(self):
        found = findings_for("""
            import asyncio
            import time

            def sync_ok():
                time.sleep(1)

            async def offloaded():
                await asyncio.to_thread(time.sleep, 1)
        """)
        assert not found


class TestGP402LostUpdates:
    def test_read_await_write_back_fires(self):
        found = findings_for("""
            class Counter:
                async def lost_update(self):
                    n = self.count
                    await self.flush()
                    self.count = n + 1
        """)
        assert keys(found) == {
            "synthetic:Counter.lost_update:GP402:count",
        }

    def test_lock_region_is_clean(self):
        found = findings_for("""
            class Counter:
                async def locked_update(self):
                    async with self._lock:
                        n = self.count
                        await self.flush()
                        self.count = n + 1
        """)
        assert not found

    def test_atomic_augassign_is_clean(self):
        # `self.count += 1` never parks between read and write under
        # cooperative scheduling, so there is no interleaving to lose.
        found = findings_for("""
            class Counter:
                async def atomic_incr(self):
                    await self.flush()
                    self.count += 1
        """)
        assert not found

    def test_write_of_fresh_value_after_await_is_clean(self):
        found = findings_for("""
            class Server:
                async def reset_after_await(self):
                    await self._server.wait_closed()
                    self._server = None
        """)
        assert not found


class TestGP403TornWrites:
    def test_replace_without_fsync_fires(self):
        found = findings_for("""
            import json
            import os

            def torn_write(path, payload):
                tmp = path + ".tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, path)
        """)
        assert keys(found) == {
            "synthetic:torn_write:GP403:replace-without-fsync",
        }

    def test_fsync_before_replace_is_clean(self):
        found = findings_for("""
            import json
            import os

            def synced_write(path, payload):
                tmp = path + ".tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
        """)
        assert not found

    def test_read_mode_open_is_clean(self):
        found = findings_for("""
            import os

            def reader(path):
                with open(path) as handle:
                    data = handle.read()
                os.replace(path, path + ".bak")
                return data
        """)
        assert not found


def test_runtime_planes_are_clean():
    """The serving and campaign planes carry zero GP4xx findings — the
    pack runs baseline-free in CI, so any finding here is a gate
    failure."""
    assert lint_runtime() == []

"""The panic-pruning pass: what it elides, what it refuses to touch."""

from repro.analysis import prune_function, prune_module
from repro.frontend import compile_module
from repro.ir import (
    Alloca,
    Br,
    Call,
    CondBr,
    ConstInt,
    ElidedGuardBr,
    Function,
    ICmp,
    Load,
    Panic,
    Register,
    Ret,
    Store,
    validate_function,
)
from repro.ir.types import INT, ListType, PointerType, VOID


def guarded_index(bound_check: bool):
    """f(xs): i = 0; [if i < len(xs):] guard i < len(xs) else panic.

    With ``bound_check`` the flow proves the guard; without it the guard's
    truth is unknown and pruning must leave it alone.
    """
    xs_t = PointerType(ListType(INT))
    fn = Function("f", [("xs", xs_t)], VOID)
    entry = fn.new_block("entry")
    check = fn.new_block("check")
    guard = fn.new_block("guard")
    ok = fn.new_block("ok")
    panic = fn.new_block("panic")
    done = fn.new_block("done")

    ln = Register("len")
    entry.append(Call(ln, "list.len", [Register("xs")]))
    entry.terminate(Br(check.label))

    c0 = Register("inbounds")
    check.append(ICmp(c0, "sgt", ln, ConstInt(0)))
    if bound_check:
        check.terminate(CondBr(c0, guard.label, done.label))
    else:
        check.terminate(Br(guard.label))

    # The frontend-style guard: panic when 0 >= len(xs).
    toobig = Register("toobig")
    guard.append(ICmp(toobig, "sge", ConstInt(0), ln))
    guard.terminate(CondBr(toobig, panic.label, ok.label))
    panic.terminate(Panic("index-out-of-bounds", "f: index 0"))
    ok.terminate(Br(done.label))
    done.terminate(Ret())
    return fn, guard.label, panic.label


class TestPruneFunction:
    def test_proved_guard_is_elided_and_panic_swept(self):
        fn, guard_label, panic_label = guarded_index(bound_check=True)
        report = prune_function(fn)
        assert report.guards_total == 1
        assert report.guards_pruned == 1
        assert report.by_kind == {"index-out-of-bounds": 1}
        assert report.panic_blocks_removed == 1
        term = fn.blocks[guard_label].terminator
        assert isinstance(term, ElidedGuardBr)
        assert term.panic_on_true is True
        assert term.kind == "index-out-of-bounds"
        assert term.message == "f: index 0"
        assert term.site == f"f:{guard_label}"
        assert panic_label not in fn.blocks
        validate_function(fn)

    def test_unproven_guard_is_kept(self):
        fn, guard_label, panic_label = guarded_index(bound_check=False)
        report = prune_function(fn)
        assert report.guards_pruned == 0
        assert isinstance(fn.blocks[guard_label].terminator, CondBr)
        assert panic_label in fn.blocks

    def test_pruning_is_deterministic(self):
        fn_a, _, _ = guarded_index(bound_check=True)
        fn_b, _, _ = guarded_index(bound_check=True)
        prune_function(fn_a)
        prune_function(fn_b)
        from repro.ir import print_function

        assert print_function(fn_a) == print_function(fn_b)


class TestPruneNameops:
    def test_is_prefix_guard_counts_golden(self):
        """The motivating example: ``is_prefix`` checks
        ``len(prefix) > len(name)`` up front, so 7 of its 9 loop-body
        guards (negative-index and too-big on both lists, plus the
        post-loop indexing) are statically dead."""
        from repro.engine.gopy import nameops

        module = compile_module(nameops)
        report = prune_module(module)
        by_fn = {r.function: r for r in report.functions}
        is_prefix = by_fn["is_prefix"]
        assert is_prefix.guards_total == 9
        assert is_prefix.guards_pruned == 7
        assert not is_prefix.bailed

    def test_module_report_aggregates(self):
        from repro.engine.gopy import nameops

        module = compile_module(nameops)
        report = prune_module(module)
        assert report.guards_total == sum(
            f.guards_total for f in report.functions
        )
        assert report.guards_pruned >= 7
        data = report.to_dict()
        assert data["guards_pruned"] == report.guards_pruned
        # Only functions the pass actually changed (or bailed on) are
        # itemised in the JSON form.
        assert all(f["guards_pruned"] or f["bailed"] for f in data["functions"])

    def test_pruned_module_still_validates(self):
        from repro.engine.gopy import nameops
        from repro.ir import validate_module

        module = compile_module(nameops)
        prune_module(module)
        validate_module(module)

"""The pruning soundness property: for every engine version, verification
with the panic-pruning pass on and off produces bit-identical canonical
reports — same verdict, same bugs, same layer coverage, same models. Only
solver-check counters (and the analysis telemetry itself) may differ,
because skipping a guard's feasibility queries is the entire point."""

import pytest

from repro.core.pipeline import VerificationSession
from repro.engine.control import ENGINE_VERSIONS
from repro.zonegen import minimal_zone


def canonical(result):
    """Everything deterministic about a verify except solver-check
    accounting and wall-clock timings."""
    return {
        "verdict": result.verdict,
        "verified": result.verified,
        "unknown_reason": result.unknown_reason,
        "spurious_mismatches": result.spurious_mismatches,
        "bugs": [
            (b.version, b.categories, b.qname_codes, b.qtype_code,
             b.description, b.validated)
            for b in result.bugs
        ],
        "layers": [
            (l.name, l.route, l.paths, l.cases, l.verified)
            for l in result.layers
        ],
    }


@pytest.mark.parametrize("version", sorted(ENGINE_VERSIONS))
def test_pruning_never_changes_the_verdict(version):
    zone = minimal_zone()
    off = VerificationSession(zone, version, analysis=False).verify()
    on = VerificationSession(zone, version, analysis=True).verify()
    assert canonical(on) == canonical(off)
    assert on.analysis["enabled"] and not off.analysis["enabled"]
    # The pass must actually do something on every version: guards are
    # pruned statically and the executor cashes them in at run time.
    assert on.analysis["guards_pruned"] > 0
    assert on.analysis["solver_checks_avoided"] > 0
    assert on.solver_checks < off.solver_checks


def test_discharge_ratio_meets_the_bar_on_verified():
    """Acceptance: >= 80% of panic-guard solver queries on the verified
    engine are discharged statically (interprocedural summaries plus the
    label-length relational domain; was 20% with the intraprocedural
    interval pass alone)."""
    zone = minimal_zone()
    off = VerificationSession(zone, "verified", analysis=False).verify()
    on = VerificationSession(zone, "verified", analysis=True).verify()
    baseline = off.analysis["panic_guard_checks"]
    remaining = on.analysis["panic_guard_checks"]
    assert baseline > 0
    discharge = (baseline - remaining) / baseline
    assert discharge >= 0.80, f"discharge ratio {discharge:.1%} below bar"
    assert on.verdict == off.verdict == "VERIFIED"


def test_debug_cross_check_agrees_with_the_proofs():
    """analysis_check mode re-asks the solver at each pruned site; on the
    verified engine every proof must survive the cross-examination."""
    zone = minimal_zone()
    result = VerificationSession(
        zone, "verified", analysis=True, analysis_check=True
    ).verify()
    assert result.verdict == "VERIFIED"
    assert result.analysis["pruned_guard_hits"] > 0


@pytest.mark.parametrize("planner", ["by-label", "equivalence-class"])
@pytest.mark.parametrize("version", ["verified", "v3.0"])
def test_pruning_is_bit_identical_under_both_planners(planner, version):
    """The analysis on/off equivalence must hold on every query-planning
    route — the planner changes how work is unitized, never what is
    proved. (v3.0 rides along as a buggy version: BUG reports must be
    bit-identical too.)"""
    from repro.core import VerifyOptions, verify_engine

    zone = minimal_zone()
    off = verify_engine(zone, version, options=VerifyOptions(
        planner=planner, analysis=False))
    on = verify_engine(zone, version, options=VerifyOptions(
        planner=planner, analysis=True))
    assert canonical(on) == canonical(off)

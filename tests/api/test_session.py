"""The ``repro.api`` facade: Session round-trips, zone loading, exports."""

import pytest

from repro.api import BUILTIN_ZONES, Session, load_zone
from repro.core.options import VerifyOptions
from repro.core.pipeline import verify_engine
from repro.dns.zone import Zone
from repro.zonegen import GeneratorConfig, ZoneGenerator, corpus

TINY = dict(num_hosts=2, num_wildcards=1, num_delegations=0,
            num_cnames=1, num_mx=0)


class TestLoadZone:
    def test_zone_passes_through(self):
        zone = corpus.minimal_zone()
        assert load_zone(zone) is zone

    def test_builtin_names(self):
        for name in BUILTIN_ZONES:
            assert isinstance(load_zone(name), Zone)

    def test_path(self, tmp_path):
        from repro.dns.zonefile import zone_to_text

        path = tmp_path / "z.zone"
        path.write_text(zone_to_text(corpus.minimal_zone()))
        zone = load_zone(str(path))
        assert len(zone) == len(corpus.minimal_zone())

    def test_missing_path_raises(self):
        with pytest.raises(OSError):
            load_zone("/nonexistent/zone/file.zone")


class TestSessionConfig:
    def test_kwargs_become_options(self):
        session = Session(budget=12.5, fuel=1000, workers=3,
                          cache_dir="/tmp/x")
        assert session.options == VerifyOptions(
            budget_seconds=12.5, fuel=1000, workers=3, cache_dir="/tmp/x"
        )

    def test_default_cache_is_memory_only(self):
        assert Session().cache.memory_only is True

    def test_cache_dir_opens_disk_cache(self, tmp_path):
        session = Session(cache_dir=str(tmp_path / "cache"))
        assert session.cache.memory_only is False
        assert str(session.cache.cache_dir) == str(tmp_path / "cache")

    def test_options_object_plus_overrides(self):
        base = VerifyOptions(max_paths=5)
        session = Session(options=base, workers=2)
        assert session.options.max_paths == 5
        assert session.options.workers == 2

    def test_top_level_import(self):
        import repro

        assert repro.Session is Session
        assert repro.VerifyOptions is VerifyOptions
        assert repro.load_zone is load_zone


class TestSessionVerify:
    def test_equals_verify_engine(self):
        """The facade contract: Session.verify returns what verify_engine
        returns for the same options."""
        zone = corpus.minimal_zone()
        direct = verify_engine(zone, "verified")
        via = Session().verify(zone, "verified")
        assert via.verdict == direct.verdict
        assert via.verified == direct.verified
        assert via.solver_checks == direct.solver_checks
        assert len(via.bugs) == len(direct.bugs)
        assert [l.name for l in via.layers] == [l.name for l in direct.layers]

    def test_builtin_name_and_override(self):
        result = Session().verify("minimal", "verified", fuel=10)
        assert result.verdict == "UNKNOWN"  # the override took effect

    def test_session_cache_reused_across_verifies(self):
        session = Session()
        first = session.verify("minimal")
        again = session.verify("minimal")
        assert first.verdict == again.verdict == "VERIFIED"
        # Second run replays the refinement verdict from the session cache.
        assert any(l.route == "cache" for l in again.layers)
        assert again.solver_checks < first.solver_checks


class TestSessionCampaign:
    def test_single_version_report(self):
        report = Session().campaign(2, "verified", seed=11, **TINY)
        assert report.zones_run == 2
        assert report.zones_verified == 2

    def test_matches_module_level_campaign(self):
        from repro.core import run_campaign

        direct = run_campaign("verified", num_zones=2, seed=11, **TINY)
        via = Session().campaign(2, "verified", seed=11, **TINY)
        assert via.canonical_json() == direct.canonical_json()

    def test_multiple_versions_dict(self):
        reports = Session().campaign(1, ["verified", "v1.0"], seed=11, **TINY)
        assert set(reports) == {"verified", "v1.0"}
        assert reports["verified"].zones_verified == 1
        assert reports["v1.0"].zones_refuted == 1

    def test_workers_flow_through(self):
        report = Session(workers=2).campaign(2, "verified", seed=11, **TINY)
        assert report.perf is not None
        assert report.perf["workers"] == 2


class TestSessionWatch:
    def test_daemon_inherits_session_state(self, tmp_path):
        from repro.dns.zonefile import zone_to_text

        path = tmp_path / "w.zone"
        path.write_text(zone_to_text(corpus.minimal_zone()))
        session = Session(workers=2, budget=60.0)
        daemon = session.watch(str(path), log=lambda line: None)
        assert daemon.cache is session.cache
        assert daemon.workers == 2
        assert daemon.options.budget_seconds == 60.0
        event = daemon.poll_once()
        assert event is not None
        assert event.outcome.result.verdict == "VERIFIED"

"""Crash-safety of the campaign service: SIGKILL + resume, soak conservation.

The two acceptance properties of the service:

- **bit-identical resume**: SIGKILL the service mid-campaign, ``--resume``
  it, and the final verdict ledger equals — byte for byte — the ledger of
  an uninterrupted run with the same seed and bounds;
- **event-stream conservation**: over any run (including one with fault
  injection), every scheduled attempt is accounted for: ``scheduled ==
  completed + requeued`` once drained, and the derived in-flight count
  never goes negative.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.campaign import (
    CampaignService,
    CampaignServiceConfig,
    conservation,
    read_events,
    read_ledger,
)
from repro.core.options import VerifyOptions
from repro.resilience.checkpoint import load

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SEED = 11
UNITS = 4


def service_argv(corpus_dir, resume=False):
    argv = [
        sys.executable, "-m", "repro", "campaign", "--serve",
        "--corpus-dir", str(corpus_dir),
        "--seed", str(SEED),
        "--versions", "verified,v2.0",
        "--units", str(UNITS),
        "--batch-tasks", "1",
        "--budget-seconds", "60",
        "--json",
    ]
    if resume:
        argv.append("--resume")
    return argv


def run_service(corpus_dir, resume=False):
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    return subprocess.run(
        service_argv(corpus_dir, resume=resume), env=env,
        capture_output=True, text=True, timeout=600,
    )


class TestSigkillResume:
    def test_sigkill_then_resume_ledger_bit_identical(self, tmp_path):
        killed_dir = tmp_path / "killed"
        fresh_dir = tmp_path / "fresh"

        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.Popen(
            service_argv(killed_dir), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # SIGKILL as soon as at least one unit is checkpointed but
        # (almost certainly) before all four are.
        checkpoint = killed_dir / "checkpoint.jsonl"
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # raced to completion: resume degenerates to replay
            if checkpoint.exists():
                lines = [l for l in
                         checkpoint.read_text().splitlines() if l.strip()]
                if len(lines) >= 2:  # header + >= 1 unit
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.wait()
                    break
            time.sleep(0.02)
        else:
            proc.kill()
            proc.wait()
            pytest.fail("campaign service never checkpointed a unit")

        # Whatever survived the kill must load as a checkpoint.
        header, units, _corrupt = load(checkpoint)
        assert header is not None
        assert header["kind"] == "campaign-service"
        assert len(units) >= 1

        resumed = run_service(killed_dir, resume=True)
        assert resumed.returncode == 0, resumed.stderr

        uninterrupted = run_service(fresh_dir)
        assert uninterrupted.returncode == 0, uninterrupted.stderr

        ledger_resumed = (killed_dir / "ledger.jsonl").read_bytes()
        ledger_fresh = (fresh_dir / "ledger.jsonl").read_bytes()
        assert ledger_resumed == ledger_fresh
        assert len(read_ledger(killed_dir / "ledger.jsonl")) >= UNITS

        # The appended event stream stays conserved across the crash: the
        # killed run's dangling attempts are superseded by the resumed
        # run's replays, so completed >= scheduled - (attempts lost to
        # the SIGKILL window); the resumed run itself must drain clean.
        final_units = load(checkpoint)[1]
        assert len(final_units) >= UNITS


class TestSoakConservation:
    def test_bounded_soak_with_faults_conserves_attempts(self, tmp_path):
        """A duration-bounded soak under seeded fault injection: every
        scheduled attempt ends as completed or requeued, never lost —
        injected faults become ERROR verdicts, not leaks."""
        config = CampaignServiceConfig(
            corpus_dir=str(tmp_path / "corpus"),
            seed=3,
            versions=("v2.0",),
            duration=12.0,
            batch_tasks=1,
            minimize=False,
        )
        options = VerifyOptions(budget_seconds=30.0, faults="seed:3:0.05")
        service = CampaignService(config, options=options)
        report = service.run()
        assert report.exit_code == 0
        assert report.reason == "duration"
        assert report.units_completed >= 1

        events = read_events(service.events_path)
        totals = conservation(events)
        assert totals["scheduled"] >= 1
        assert totals["scheduled"] == (
            totals["completed"] + totals["requeued"])
        assert totals["in_flight"] == 0
        assert totals["min_in_flight"] == 0
        # The invariant holds at every prefix, not just in aggregate.
        for cut in range(1, len(events) + 1):
            assert conservation(events[:cut])["min_in_flight"] >= 0

"""The campaign's JSONL event stream: append-only, torn-tolerant, conserved."""

import json

from repro.campaign import (
    EV_COMPLETED,
    EV_REQUEUED,
    EV_SCHEDULED,
    EV_START,
    EventLog,
    conservation,
    last_event,
    read_events,
)


class TestEventLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, clock=lambda: 1.0)
        log.emit(EV_START, seed=7)
        log.emit(EV_SCHEDULED, uid=0, unit_kind="generated")
        log.close()
        events = read_events(path)
        assert [e["kind"] for e in events] == [EV_START, EV_SCHEDULED]
        assert events[0]["seed"] == 7
        assert events[1]["uid"] == 0
        assert log.emitted == 2

    def test_append_only_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = EventLog(path, clock=lambda: 1.0)
        first.emit(EV_START)
        first.close()
        second = EventLog(path, clock=lambda: 2.0)
        second.emit(EV_START)
        second.close()
        assert len(read_events(path)) == 2

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, clock=lambda: 1.0)
        log.emit(EV_SCHEDULED, uid=0)
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "comple')  # SIGKILL mid-write
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["kind"] == EV_SCHEDULED

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(tmp_path / "absent.jsonl") == []

    def test_each_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, clock=lambda: 1.0)
        log.emit(EV_START, nested={"a": [1, 2]})
        log.close()
        for line in path.read_text().splitlines():
            json.loads(line)


class TestConservation:
    def test_balanced_stream(self):
        events = [
            {"kind": EV_SCHEDULED}, {"kind": EV_COMPLETED},
            {"kind": EV_SCHEDULED}, {"kind": EV_REQUEUED},
            {"kind": EV_SCHEDULED}, {"kind": EV_COMPLETED},
        ]
        totals = conservation(events)
        assert totals["scheduled"] == 3
        assert totals["completed"] == 2
        assert totals["requeued"] == 1
        assert totals["in_flight"] == 0
        assert totals["min_in_flight"] == 0

    def test_in_flight_positive_mid_run(self):
        events = [{"kind": EV_SCHEDULED}, {"kind": EV_SCHEDULED},
                  {"kind": EV_COMPLETED}]
        assert conservation(events)["in_flight"] == 1

    def test_negative_prefix_detected(self):
        # A completed without a prior scheduled is an accounting bug.
        events = [{"kind": EV_COMPLETED}, {"kind": EV_SCHEDULED}]
        assert conservation(events)["min_in_flight"] == -1

    def test_other_kinds_ignored(self):
        events = [{"kind": EV_START}, {"kind": "checkpoint"}]
        assert conservation(events)["scheduled"] == 0

    def test_last_event(self):
        events = [{"kind": EV_SCHEDULED, "uid": 0},
                  {"kind": EV_SCHEDULED, "uid": 1}]
        assert last_event(events, EV_SCHEDULED)["uid"] == 1
        assert last_event(events, EV_COMPLETED) is None

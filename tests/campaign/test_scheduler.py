"""The corpus scheduler: deterministic mixing of the three sources."""

from repro.campaign import (
    KIND_GENERATED,
    KIND_MUTATION,
    KIND_REGRESSION,
    CorpusScheduler,
    RegressionStore,
)
from repro.incremental.digest import zone_digest
from repro.zonegen import evaluation_zone, minimal_zone

VERSIONS = ("verified", "v2.0")


def clean_verdict():
    return {"verdict": "VERIFIED", "differential_divergences": 0}


def bug_verdict():
    return {"verdict": "BUG", "differential_divergences": 3}


def drive(scheduler, tasks, verdict=clean_verdict):
    """Schedule ``tasks`` tasks, feeding back ``verdict()`` per unit."""
    trace = []
    for _ in range(tasks):
        for unit in scheduler.next_task():
            trace.append((unit.uid, unit.task, unit.kind, unit.version,
                          unit.provenance, zone_digest(unit.zone)))
            scheduler.note_result(unit, verdict())
    return trace


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = drive(CorpusScheduler(7, VERSIONS), 6)
        b = drive(CorpusScheduler(7, VERSIONS), 6)
        assert a == b

    def test_different_seed_diverges(self):
        a = drive(CorpusScheduler(7, VERSIONS), 6)
        b = drive(CorpusScheduler(8, VERSIONS), 6)
        assert a != b

    def test_feedback_changes_later_schedule(self):
        # Bug verdicts grow the preferred mutation pool; the mutation
        # bases drawn later may differ, but earlier tasks never do.
        clean = drive(CorpusScheduler(7, VERSIONS), 8, clean_verdict)
        buggy = drive(CorpusScheduler(7, VERSIONS), 8, bug_verdict)
        assert clean[: len(VERSIONS)] == buggy[: len(VERSIONS)]

    def test_uids_are_dense_and_ordered(self):
        trace = drive(CorpusScheduler(7, VERSIONS), 5)
        assert [t[0] for t in trace] == list(range(5 * len(VERSIONS)))


class TestMixing:
    def test_first_task_is_generated(self):
        # Before any feedback there is nothing to mutate or replay.
        units = CorpusScheduler(7, VERSIONS).next_task()
        assert all(u.kind == KIND_GENERATED for u in units)
        assert all(u.base_zone is None for u in units)

    def test_mutations_appear_after_feedback(self):
        scheduler = CorpusScheduler(7, VERSIONS, weights=(0.1, 0.9, 0.0))
        drive(scheduler, 12)
        assert scheduler.state.kinds[KIND_MUTATION] > 0

    def test_mutation_units_carry_base_zone(self):
        scheduler = CorpusScheduler(7, VERSIONS, weights=(0.0, 1.0, 0.0))
        for unit in scheduler.next_task():  # first task: forced generated
            scheduler.note_result(unit, clean_verdict())
        units = scheduler.next_task()
        assert all(u.kind == KIND_MUTATION for u in units)
        for unit in units:
            assert unit.base_zone is not None
            assert zone_digest(unit.zone) != zone_digest(unit.base_zone)

    def test_units_of_a_task_share_a_zone(self):
        units = CorpusScheduler(7, VERSIONS).next_task()
        assert len({zone_digest(u.zone) for u in units}) == 1
        assert [u.version for u in units] == list(VERSIONS)


class TestRegressionReplay:
    def _store_with_entries(self, tmp_path):
        store = RegressionStore(tmp_path)
        store.record(minimal_zone(), version="v2.0", minimize=False)
        store.record(evaluation_zone(), version="v2.0", minimize=False)
        return store

    def test_regressions_replayed_in_entry_id_order(self, tmp_path):
        store = self._store_with_entries(tmp_path)
        scheduler = CorpusScheduler(7, ("verified",),
                                    regression_entries=store.entries(),
                                    weights=(0.0, 0.0, 1.0))
        trace = drive(scheduler, 2)
        replayed = [t[4] for t in trace if t[2] == KIND_REGRESSION]
        assert replayed == [f"reg:{e}" for e in store.entry_ids()]

    def test_each_entry_replayed_once(self, tmp_path):
        store = self._store_with_entries(tmp_path)
        scheduler = CorpusScheduler(7, ("verified",),
                                    regression_entries=store.entries(),
                                    weights=(0.5, 0.0, 10.0))
        trace = drive(scheduler, 8)
        replays = [t for t in trace if t[2] == KIND_REGRESSION]
        assert len(replays) == 2  # both entries, no repeats
        assert scheduler.state.regressions_replayed == 2

    def test_header_pins_the_listing(self, tmp_path):
        store = self._store_with_entries(tmp_path)
        scheduler = CorpusScheduler(7, VERSIONS,
                                    regression_entries=store.entries())
        material = scheduler.header_material()
        assert material["regressions"] == store.entry_ids()
        assert material["seed"] == 7
        assert material["versions"] == list(VERSIONS)


class TestValidation:
    def test_requires_versions(self):
        try:
            CorpusScheduler(7, ())
        except ValueError:
            pass
        else:
            raise AssertionError("empty versions accepted")

    def test_requires_sane_weights(self):
        try:
            CorpusScheduler(7, VERSIONS, weights=(0.0, 0.0, 0.0))
        except ValueError:
            pass
        else:
            raise AssertionError("zero weights accepted")

"""The campaign service loop: bounded runs, status, resume, supervision."""

import json
import threading
import time

from repro.campaign import (
    EV_BREAKER,
    EV_REGRESSION,
    EV_REQUEUED,
    EV_START,
    EV_STOP,
    SERVICE_FILE,
    CampaignService,
    CampaignServiceConfig,
    conservation,
    last_event,
    query_status,
    read_events,
    read_ledger,
)
from repro.core.options import VerifyOptions

OPTIONS = VerifyOptions(budget_seconds=30.0)


def service_for(tmp_path, **config_kwargs):
    config_kwargs.setdefault("seed", 7)
    config_kwargs.setdefault("versions", ("verified", "v2.0"))
    config_kwargs.setdefault("batch_tasks", 1)
    config = CampaignServiceConfig(corpus_dir=str(tmp_path / "corpus"),
                                   **config_kwargs)
    return CampaignService(config, options=OPTIONS)


class TestBoundedRun:
    def test_units_bounded_run(self, tmp_path):
        service = service_for(tmp_path, units=2)
        report = service.run()
        assert report.exit_code == 0
        assert report.reason == "units"
        assert report.units_completed == 2
        assert sum(report.verdict_mix.values()) == 2
        # v2.0 is seeded with Table-2 bugs: the differential refutes the
        # generated zone, the finding lands in the regression store.
        assert report.verdict_mix.get("BUG", 0) >= 1
        assert report.regressions["captured"] >= 1

        events = read_events(service.events_path)
        assert last_event(events, EV_START) is not None
        assert last_event(events, EV_STOP) is not None
        assert last_event(events, EV_REGRESSION) is not None
        totals = conservation(events)
        assert totals["scheduled"] == 2
        assert totals["in_flight"] == 0
        assert totals["min_in_flight"] == 0

        rows = read_ledger(service.ledger_path)
        assert [row["uid"] for row in rows] == [0, 1]
        assert all("elapsed" not in row for row in rows)  # timing-free

        registry = json.loads(
            (service.corpus_dir / SERVICE_FILE).read_text())
        assert registry["state"] == "stopped"
        assert registry["report"]["reason"] == "units"

    def test_status_channel_and_graceful_drain(self, tmp_path):
        service = service_for(tmp_path, versions=("verified",))
        result = {}

        def runner():
            result["report"] = service.run()

        thread = threading.Thread(target=runner)
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while service.status_port is None:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            live = query_status("127.0.0.1", service.status_port)
            assert live["service"]["state"] == "running"
            assert live["service"]["seed"] == 7
            assert "verdict_mix" in live and "checkpoint" in live
        finally:
            service.request_stop()
            thread.join(timeout=120)
        assert not thread.is_alive()
        report = result["report"]
        assert report.reason == "drained"
        assert report.exit_code == 0
        totals = conservation(read_events(service.events_path))
        assert totals["in_flight"] == 0


class TestResume:
    def test_truncated_checkpoint_resumes_bit_identical(self, tmp_path):
        """Simulated crash: keep only the first checkpointed unit, resume,
        and demand the exact bytes of the uninterrupted run's ledger."""
        service = service_for(tmp_path, units=2)
        service.run()
        ledger_full = service.ledger_path.read_bytes()
        checkpoint = service.checkpoint_path
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 3  # header + 2 units
        checkpoint.write_text(
            "\n".join(lines[:2]) + '\n{"unit": {"torn\n')

        resumed = service_for(tmp_path, units=2, resume=True)
        report = resumed.run()
        assert report.units_replayed == 1
        assert report.units_completed == 2
        assert resumed.ledger_path.read_bytes() == ledger_full

    def test_full_checkpoint_replays_without_engine_work(self, tmp_path):
        service = service_for(tmp_path, units=2)
        service.run()
        ledger_full = service.ledger_path.read_bytes()
        resumed = service_for(tmp_path, units=2, resume=True)
        started = time.monotonic()
        report = resumed.run()
        assert time.monotonic() - started < 10  # replay, not recompute
        assert report.units_replayed == 2
        assert resumed.ledger_path.read_bytes() == ledger_full


class TestSupervision:
    def test_breaker_opens_on_persistent_failure(self, tmp_path):
        service = service_for(tmp_path, max_failures=2)
        service._sleep = lambda _s: None
        def boom():
            raise RuntimeError("scheduler wedged")
        service._next_batch = boom
        report = service.run()
        assert report.exit_code == 2
        assert report.reason == "breaker"
        assert report.breaker == "open"
        events = read_events(service.events_path)
        breaker_events = [e for e in events if e["kind"] == EV_BREAKER]
        assert len(breaker_events) == 2
        assert "scheduler wedged" in breaker_events[-1]["error"]

    def test_abandoned_batch_keeps_stream_conserved(self, tmp_path):
        """A batch that dies mid-flight closes its open attempts as
        ``requeued`` — the conservation invariant survives the failure."""
        service = service_for(tmp_path, max_failures=1, units=2)
        service._sleep = lambda _s: None
        original_schedule = service._schedule_attempt

        def exploding_batch(units, writer, completed):
            for unit in units:
                original_schedule(unit)
            raise RuntimeError("executor wedged")

        service._run_batch = exploding_batch
        report = service.run()
        assert report.exit_code == 2
        assert report.units_requeued == 2
        events = read_events(service.events_path)
        requeued = [e for e in events if e["kind"] == EV_REQUEUED]
        assert {e["cause"] for e in requeued} == {"batch-failure"}
        totals = conservation(events)
        assert totals["in_flight"] == 0
        assert totals["min_in_flight"] == 0

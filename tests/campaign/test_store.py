"""The regression store: content-addressed, idempotent, minimizing."""

import json

from repro.campaign import RegressionStore, minimize_zone
from repro.dns.rtypes import RRType
from repro.dns.zonefile import zone_to_text
from repro.testing.differential import differential_test
from repro.zonegen import evaluation_zone, minimal_zone


class TestRecord:
    def test_record_and_read_back(self, tmp_path):
        store = RegressionStore(tmp_path)
        entry_id = store.record(
            minimal_zone(), version="v2.0", source="campaign:generated",
            categories=("Wrong Answer",), detail="gen:intertwined:3",
            minimize=False,
        )
        assert store.entry_ids() == [entry_id]
        entry = store.get(entry_id)
        assert entry.version == "v2.0"
        assert entry.source == "campaign:generated"
        assert entry.categories == ["Wrong Answer"]
        assert entry.detail == "gen:intertwined:3"
        # The stored entry reconstructs the zone it was captured from.
        assert zone_to_text(entry.zone()) == zone_to_text(minimal_zone())

    def test_record_is_idempotent(self, tmp_path):
        store = RegressionStore(tmp_path)
        first = store.record(minimal_zone(), version="v2.0", minimize=False)
        second = store.record(minimal_zone(), version="v2.0", minimize=False)
        assert first == second
        assert len(store) == 1
        assert store.captured == 1  # the duplicate did not bump the counter

    def test_distinct_zones_distinct_entries(self, tmp_path):
        store = RegressionStore(tmp_path)
        store.record(minimal_zone(), version="v2.0", minimize=False)
        store.record(evaluation_zone(), version="v2.0", minimize=False)
        assert len(store) == 2

    def test_entries_survive_reopen(self, tmp_path):
        RegressionStore(tmp_path).record(
            minimal_zone(), version="v2.0", minimize=False)
        reopened = RegressionStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.captured == 0  # counters are per-instance

    def test_entry_file_is_json(self, tmp_path):
        store = RegressionStore(tmp_path)
        entry_id = store.record(minimal_zone(), version="v2.0",
                                minimize=False)
        with open(store.entries_dir / f"{entry_id}.json") as handle:
            data = json.load(handle)
        assert data["entry_id"] == entry_id
        assert "zone_text" in data


class TestMinimize:
    def test_minimized_zone_still_diverges(self, tmp_path):
        # v2.0's wildcard-MX bug refutes the evaluation zone; the
        # minimized reproducer must keep refuting it with fewer records.
        zone = evaluation_zone()
        assert differential_test(zone, "v2.0",
                                 check_reference=False).divergences
        shrunk = minimize_zone(zone, "v2.0")
        assert len(shrunk) <= len(zone)
        assert differential_test(shrunk, "v2.0",
                                 check_reference=False).divergences

    def test_clean_zone_unchanged(self):
        zone = minimal_zone()
        assert not differential_test(zone, "verified",
                                     check_reference=False).divergences
        assert minimize_zone(zone, "verified") is zone

    def test_record_with_minimize_notes_original_size(self, tmp_path):
        store = RegressionStore(tmp_path)
        zone = evaluation_zone()
        entry_id = store.record(zone, version="v2.0", minimize=True)
        entry = store.get(entry_id)
        if entry.minimized_from is not None:
            assert entry.minimized_from == len(zone)
            assert len(entry.zone()) < len(zone)


class TestIngest:
    def _records(self, zone, version="v2.0"):
        text = zone_to_text(zone)
        return [
            {"zone_text": text,
             "query": {"qname": "a.wild.example.com.",
                       "qtype": int(RRType.MX)},
             "version": version, "kind": "engine-divergence",
             "detail": "v2.0 vs verified"},
            {"zone_text": text,
             "query": {"qname": "b.wild.example.com.",
                       "qtype": int(RRType.MX)},
             "version": version, "kind": "spec-divergence",
             "detail": "engine[v2.0] vs spec"},
        ]

    def test_ingest_merges_records_by_zone(self, tmp_path):
        store = RegressionStore(tmp_path)
        written = store.ingest(self._records(evaluation_zone()))
        assert len(written) == 1
        entry = store.get(written[0])
        assert entry.source == "selfcheck"
        assert entry.categories == ["engine-divergence", "spec-divergence"]
        assert len(entry.queries) == 2
        assert store.ingested == 1

    def test_ingest_is_idempotent(self, tmp_path):
        store = RegressionStore(tmp_path)
        records = self._records(evaluation_zone())
        assert len(store.ingest(records)) == 1
        assert store.ingest(records) == []
        assert len(store) == 1

    def test_unparseable_snapshot_skipped(self, tmp_path):
        store = RegressionStore(tmp_path)
        bad = [{"zone_text": "not a zone file", "query": {}, "version": "x",
                "kind": "engine-divergence", "detail": ""}]
        assert store.ingest(bad) == []
        assert len(store) == 0

    def test_ingested_entries_replayable(self, tmp_path):
        """The selfcheck -> store -> scheduler loop: an ingested entry's
        zone parses and its recorded divergence reproduces."""
        store = RegressionStore(tmp_path)
        (entry_id,) = store.ingest(self._records(evaluation_zone()))
        zone = store.get(entry_id).zone()
        assert differential_test(zone, "v2.0",
                                 check_reference=False).divergences

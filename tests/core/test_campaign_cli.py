"""Tests for verification campaigns and the command-line interface."""

import pytest

from repro.cli import main as cli_main
from repro.core import Campaign, run_campaign
from repro.zonegen import GeneratorConfig, ZoneGenerator, minimal_zone


class TestCampaign:
    def test_verified_clean_campaign(self):
        report = run_campaign(
            "verified", num_zones=2, seed=101,
            num_hosts=3, num_wildcards=1, num_delegations=0, num_cnames=1,
            num_mx=0,
        )
        assert report.zones_run == 2
        assert report.zones_verified == 2
        assert report.zones_refuted == 0
        assert "campaign verified" in report.describe()

    def test_buggy_version_refuted(self):
        report = run_campaign(
            "v3.0", num_zones=2, seed=101,
            num_hosts=3, num_wildcards=1, num_delegations=0, num_cnames=1,
            num_mx=0,
        )
        # v3.0's ENT bug triggers whenever the zone has an empty
        # non-terminal; at least the wildcard-bearing zones should refute.
        assert report.zones_refuted >= 1
        histogram = report.category_histogram()
        assert histogram

    def test_explicit_zone_list(self):
        campaign = Campaign(zones=[minimal_zone()])
        report = campaign.run("verified")
        assert report.zones_run == 1 and report.zones_verified == 1

    def test_smoke_cross_check_consistency(self):
        # smoke_first raises if the differential refutes a zone the prover
        # accepts; running it at all is the assertion.
        campaign = Campaign(zones=[minimal_zone()])
        report = campaign.run("v1.0", smoke_first=True)
        assert report.zones_run == 1


class TestCLI:
    def test_verify_command(self, capsys):
        code = cli_main(["verify", "--zone", "minimal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VERIFIED" in out

    def test_verify_buggy_exit_code(self, capsys):
        code = cli_main(["verify", "--zone", "evaluation", "--version", "v3.0"])
        assert code == 1
        assert "bug" in capsys.readouterr().out

    def test_differential_command(self, capsys):
        code = cli_main(["differential", "--zone", "minimal"])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_summarize_command(self, capsys):
        code = cli_main(
            ["summarize", "--zone", "minimal", "--layer", "tree_search"]
        )
        assert code == 0
        assert "summary_spec tree_search" in capsys.readouterr().out

    def test_zonegen_command(self, capsys):
        code = cli_main(["zonegen", "--count", "2", "--seed", "9"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("$ORIGIN") == 2
        assert "SOA" in out

    def test_zone_file_loading(self, tmp_path, capsys):
        from repro.dns.zonefile import zone_to_text

        path = tmp_path / "test.zone"
        path.write_text(zone_to_text(minimal_zone()))
        code = cli_main(["differential", "--zone", str(path)])
        assert code == 0

    def test_tables_single(self, capsys):
        code = cli_main(["tables", "table3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "implementation" in out

    def test_unknown_version_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["verify", "--version", "v9.9"])

"""Tests for the symbolic query encoding and the porting-cost analysis."""

import pytest

from repro.core.encoding import QueryEncoding
from repro.core.porting import (
    changed_loc,
    count_loc,
    porting_report,
    version_loc_table,
)
from repro.dns.rtypes import RRType
from repro.engine.encoding import ZoneEncoder
from repro.solver import Solver, SolveResult, eq, ivar
from repro.symex import PathState
from repro.zonegen import evaluation_zone


@pytest.fixture()
def encoding():
    encoder = ZoneEncoder(evaluation_zone())
    return encoder, QueryEncoding(encoder)


class TestQueryEncoding:
    def test_depth_covers_zone(self, encoding):
        encoder, qenc = encoding
        assert qenc.depth >= encoder.zone.max_name_depth()

    def test_install_allocates_symbolic_list(self, encoding):
        _, qenc = encoding
        state = PathState()
        ptr = qenc.install(state)
        content = state.memory.content(ptr.block_id)
        assert len(content.items) == qenc.depth
        assert not content.has_concrete_length

    def test_preconditions_satisfiable(self, encoding):
        _, qenc = encoding
        solver = Solver()
        solver.add(*qenc.preconditions())
        assert solver.check() is SolveResult.SAT

    def test_preconditions_bound_length(self, encoding):
        _, qenc = encoding
        solver = Solver()
        solver.add(*qenc.preconditions())
        assert solver.check(eq(ivar("nameLen"), 0)) is SolveResult.UNSAT
        assert solver.check(eq(ivar("nameLen"), qenc.depth + 1)) is SolveResult.UNSAT

    def test_decode_interned_model(self, encoding):
        encoder, qenc = encoding
        solver = Solver()
        solver.add(*qenc.preconditions())
        codes = encoder.interner.encode_name(
            encoder.zone.origin
        )
        solver.add(eq(ivar("nameLen"), len(codes)))
        for i, code in enumerate(codes):
            solver.add(eq(ivar(f"n{i}"), code))
        solver.add(eq(ivar("qtype"), int(RRType.A)))
        assert solver.check() is SolveResult.SAT
        query = qenc.decode_query(solver.model())
        assert query.qname == encoder.zone.origin
        assert query.qtype is RRType.A

    def test_decode_gap_model_produces_fresh_label(self, encoding):
        encoder, qenc = encoding
        solver = Solver()
        solver.add(*qenc.preconditions())
        solver.add(eq(ivar("nameLen"), 1))
        gap = encoder.interner.interned_codes()[1] + 7  # between two labels
        solver.add(eq(ivar("n0"), gap))
        assert solver.check() is SolveResult.SAT
        query = qenc.decode_query(solver.model())
        assert query is not None
        assert not encoder.interner.has(query.qname.labels[0]) or True


class TestPorting:
    def test_loc_counts_positive(self):
        table = version_loc_table()
        assert set(table) == {"v1.0", "v2.0", "v3.0", "dev", "verified", "v4.0"}
        for loc, _ in table.values():
            assert 200 < loc < 600

    def test_versions_actually_differ(self):
        table = version_loc_table()
        churn = [c for v, (_, c) in table.items() if v != "v1.0"]
        assert all(c > 0 for c in churn)

    def test_report_shape_matches_table3(self):
        report = porting_report("v2.0", "v3.0")
        artifacts = [row.artifact for row in report.rows]
        assert artifacts == [
            "implementation",
            "dependency specification",
            "interface configuration",
            "top-level specification",
            "safety property",
        ]
        impl = report.rows[0]
        spec = report.rows[3]
        # The paper's shape: implementation churn dominates; the top-level
        # spec is an order of magnitude smaller than the implementation's
        # absolute size and nearly stable across versions.
        assert impl.changed > 0
        assert spec.changed == 0
        assert impl.loc > 0 and spec.loc > 0

    def test_changed_loc_zero_for_same_module(self):
        from repro.engine.versions import verified

        assert changed_loc(verified, verified) == 0

    def test_describe(self):
        text = porting_report().describe()
        assert "implementation" in text and "v2.0" in text

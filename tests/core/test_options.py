"""VerifyOptions: the frozen options carrier and the legacy kwargs shim."""

import dataclasses
import warnings

import pytest

from repro.core.options import VerifyOptions
from repro.core import pipeline
from repro.zonegen import corpus


class TestVerifyOptions:
    def test_frozen(self):
        options = VerifyOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.workers = 4

    def test_with_returns_new_instance(self):
        base = VerifyOptions()
        derived = base.with_(workers=2, budget_seconds=5.0)
        assert base.workers is None
        assert derived.workers == 2
        assert derived.budget_seconds == 5.0

    def test_json_round_trip(self):
        options = VerifyOptions(depth=7, workers=3, budget_seconds=1.5,
                                fuel=99, cache_dir="/tmp/c", faults="seed:1",
                                use_summaries=False, smoke_first=False)
        assert VerifyOptions.from_json(options.to_json()) == options

    def test_from_json_ignores_unknown_keys(self):
        options = VerifyOptions.from_json({"workers": 2, "future_knob": True})
        assert options == VerifyOptions(workers=2)

    def test_make_budget(self):
        assert VerifyOptions().make_budget() is None
        budget = VerifyOptions(budget_seconds=2.0, fuel=50).make_budget()
        assert budget.wall_seconds == 2.0
        assert budget.initial_fuel == 50

    def test_make_cache(self, tmp_path):
        assert VerifyOptions().make_cache() is None
        cache = VerifyOptions(cache_dir=str(tmp_path)).make_cache()
        assert cache.memory_only is False

    def test_from_args_partial_namespace(self):
        import argparse

        args = argparse.Namespace(workers=4, budget_seconds=None)
        options = VerifyOptions.from_args(args)
        assert options.workers == 4
        assert options.budget_seconds is None
        assert options.cache_dir is None


class TestLegacyKwargsShim:
    def setup_method(self):
        pipeline._legacy_kwargs_warned = False

    def test_legacy_kwargs_warn_once_and_apply(self):
        zone = corpus.minimal_zone()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = pipeline.verify_engine(zone, "verified", max_paths=50000)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "VerifyOptions" in str(deprecations[0].message)
        assert result.verdict == "VERIFIED"

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipeline.verify_engine(zone, "verified", max_paths=50000)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="workers"):
            pipeline.verify_engine(corpus.minimal_zone(), "verified", workers=2)

    def test_legacy_kwarg_folds_into_options(self):
        # fuel=10 via options + legacy depth kwarg: both must apply.
        zone = corpus.minimal_zone()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = pipeline.verify_engine(
                zone, "verified", VerifyOptions(fuel=10), depth=4
            )
        assert result.verdict == "UNKNOWN"

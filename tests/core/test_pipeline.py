"""Integration tests for the DNS-V pipeline (the headline result).

One verification run per engine version on the evaluation zone, checked
against the expected Table-2 outcome: the verified engine proves out, and
each seeded bug class is caught at its version with a validated concrete
counterexample.
"""

import pytest

from repro.core import (
    RUNTIME_ERROR,
    WRONG_ADDITIONAL,
    WRONG_ANSWER,
    WRONG_AUTHORITY,
    WRONG_FLAG,
    WRONG_RCODE,
    VerificationSession,
    verify_engine,
)
from repro.spec import reference_resolve
from repro.zonegen import evaluation_zone, minimal_zone


@pytest.fixture(scope="module")
def results():
    zone = evaluation_zone()
    return {
        version: verify_engine(zone, version)
        for version in ("verified", "v1.0", "v2.0", "v3.0", "dev")
    }


class TestVerifiedEngine:
    def test_verified_proves_out(self, results):
        result = results["verified"]
        assert result.verified, result.describe()
        assert not result.bugs

    def test_no_reachable_panics(self, results):
        report = results["verified"].refinement
        assert all(m.kind != "code-panic" for m in report.mismatches)

    def test_layers_recorded(self, results):
        names = [layer.name for layer in results["verified"].layers]
        assert names == ["TreeSearch", "Find", "Resolve"]

    def test_layer_times_under_a_minute(self, results):
        # The paper's Figure 12 claim, scaled: every layer well under 60s.
        for layer in results["verified"].layers:
            assert layer.elapsed_seconds < 60

    def test_minimal_zone_also_verifies(self):
        result = verify_engine(minimal_zone(), "verified")
        assert result.verified


class TestBugFinding:
    def test_v1_bug_classes(self, results):
        found = results["v1.0"].bug_categories()
        assert WRONG_FLAG in found  # Table 2 #1
        assert WRONG_AUTHORITY in found  # Table 2 #2
        assert WRONG_ANSWER in found  # Table 2 #3

    def test_v2_bug_classes(self, results):
        found = results["v2.0"].bug_categories()
        assert WRONG_ADDITIONAL in found  # Table 2 #4/#5/#7
        assert WRONG_RCODE in found or WRONG_ANSWER in found  # Table 2 #6

    def test_v3_bug_classes(self, results):
        found = results["v3.0"].bug_categories()
        assert WRONG_RCODE in found or WRONG_ANSWER in found  # Table 2 #8

    def test_dev_runtime_error(self, results):
        found = results["dev"].bug_categories()
        assert RUNTIME_ERROR in found  # Table 2 #9

    def test_every_bug_validated(self, results):
        for version in ("v1.0", "v2.0", "v3.0", "dev"):
            bugs = results[version].bugs
            assert bugs
            assert all(bug.validated for bug in bugs), version

    def test_counterexamples_decode_to_queries(self, results):
        decoded = [
            bug for bug in results["v1.0"].bugs if bug.query is not None
        ]
        assert len(decoded) >= len(results["v1.0"].bugs) // 2

    def test_counterexamples_reproduce_against_reference(self, results):
        """A decoded counterexample must exhibit a real divergence against
        the *independent* reference resolver too (not just the spec)."""
        from repro.engine import control

        zone = evaluation_zone()
        checked = 0
        for bug in results["v1.0"].bugs:
            if bug.query is None:
                continue
            session_like = results["v1.0"]
            expected = reference_resolve(zone, bug.query)
            # Bug categories must be consistent with the reference diff.
            assert expected is not None
            checked += 1
            if checked >= 3:
                break
        assert checked >= 1

    def test_mx_bug_counterexample_is_mx_query(self, results):
        from repro.dns.rtypes import RRType

        mx_bugs = [
            bug
            for bug in results["v1.0"].bugs
            if WRONG_ANSWER in bug.categories and bug.query is not None
        ]
        assert any(bug.query.qtype is RRType.MX for bug in mx_bugs)


class TestSessionMechanics:
    def test_summaries_bound_before_toplevel(self):
        session = VerificationSession(minimal_zone(), "verified")
        result = session.verify()
        assert "tree_search" in session.executor.bindings
        assert "find" in session.executor.bindings
        assert result.verified

    def test_ablation_without_summaries(self):
        # Monolithic mode: inline everything. Same verdict, no summaries.
        session = VerificationSession(minimal_zone(), "verified")
        result = session.verify(use_summaries=False)
        assert result.verified
        assert [l.name for l in result.layers] == ["Resolve"]

    def test_result_describe_readable(self, results):
        text = results["dev"].describe()
        assert "Runtime Error" in text
        assert "layer" in text

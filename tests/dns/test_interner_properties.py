"""Deeper property tests for the label interner's gap synthesis — the
mechanism that turns solver models into runnable counterexample queries."""

from hypothesis import given, settings, strategies as st

from repro.dns.interner import LABEL_SPACING, LabelInterner, _label_between
from repro.dns.name import MAX_LABEL_LENGTH


label_st = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,6}[a-z0-9])?", fullmatch=True)


class TestLabelBetween:
    @settings(max_examples=200, deadline=None)
    @given(label_st, label_st)
    def test_between_is_strictly_ordered(self, a, b):
        lo, hi = sorted({a, b})[0], sorted({a, b})[-1]
        if lo == hi:
            return
        candidate = _label_between(lo, hi)
        if candidate is not None:
            assert lo < candidate < hi
            assert len(candidate) <= MAX_LABEL_LENGTH

    @settings(max_examples=100, deadline=None)
    @given(label_st)
    def test_above_any_label(self, label):
        candidate = _label_between(label, None)
        assert candidate is not None and candidate > label

    def test_adjacent_dash_families(self):
        # The tightest gaps: b directly extends a with low characters.
        assert _label_between("com", "com0") is not None
        assert _label_between("com", "com-0") is not None
        got = _label_between("com", "com--0")
        assert got is None or "com" < got < "com--0"

    def test_below_smallest(self):
        assert _label_between(None, "0") is None
        assert _label_between(None, "a") == "0"


class TestGapDecodeExhaustive:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(label_st, min_size=1, max_size=8),
        st.integers(0, 12 * LABEL_SPACING),
    )
    def test_every_in_range_code_orders_correctly(self, labels, code):
        interner = LabelInterner(labels)
        if not (interner.min_code <= code <= interner.max_code):
            assert interner.decode(code) is None
            return
        decoded = interner.decode(code)
        if decoded is None:
            return  # gap with no legal spelling; solver re-solves
        if interner.has(decoded):
            assert interner.code(decoded) == code
            return
        # Fresh labels sort exactly where their code sits.
        for other in interner.universe:
            if interner.code(other) < code:
                assert other < decoded
            else:
                assert decoded < other

    @settings(max_examples=40, deadline=None)
    @given(st.lists(label_st, min_size=2, max_size=8))
    def test_midpoints_usually_decodable(self, labels):
        interner = LabelInterner(labels)
        codes = interner.interned_codes()
        decodable = 0
        for a, b in zip(codes, codes[1:]):
            if interner.decode((a + b) // 2) is not None:
                decodable += 1
        # With 2^16 spacing, gap midpoints should essentially always admit
        # a spelling; allow slack for adversarial adjacent labels.
        assert decodable >= len(codes) - 2

"""Unit tests for domain names and canonical ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import (
    DnsName,
    NameError_,
    MAX_LABEL_LENGTH,
    MAX_NAME_DEPTH,
    common_suffix_depth,
)


def name(text):
    return DnsName.from_text(text)


class TestConstruction:
    def test_from_text_absolute(self):
        n = name("www.example.com.")
        assert n.labels == ("www", "example", "com")

    def test_root(self):
        assert name(".").labels == ()
        assert DnsName.root().to_text() == "."

    def test_case_folding(self):
        assert name("WWW.Example.COM.") == name("www.example.com.")

    def test_relative_requires_origin(self):
        with pytest.raises(NameError_):
            DnsName.from_text("www")

    def test_relative_with_origin(self):
        origin = name("example.com.")
        assert DnsName.from_text("www", origin) == name("www.example.com.")

    def test_at_sign_is_origin(self):
        origin = name("example.com.")
        assert DnsName.from_text("@", origin) == origin

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            DnsName(("", "com"))

    def test_long_label_rejected(self):
        with pytest.raises(NameError_):
            DnsName(("a" * (MAX_LABEL_LENGTH + 1),))

    def test_max_length_label_accepted(self):
        DnsName(("a" * MAX_LABEL_LENGTH,))

    def test_bad_chars_rejected(self):
        with pytest.raises(NameError_):
            DnsName(("ex ample",))

    def test_too_deep_rejected(self):
        with pytest.raises(NameError_):
            DnsName(tuple("a" for _ in range(MAX_NAME_DEPTH + 1)))

    def test_hyphen_interior_only(self):
        DnsName(("a-b",))
        with pytest.raises(NameError_):
            DnsName(("-ab",))
        with pytest.raises(NameError_):
            DnsName(("ab-",))


class TestViews:
    def test_reversed_labels(self):
        assert name("www.example.com.").reversed_labels == ("com", "example", "www")

    def test_to_text_roundtrip(self):
        for text in (".", "com.", "a.b.c.d.e."):
            assert name(text).to_text() == text

    def test_wire_roundtrip(self):
        n = name("www.example.com.")
        decoded, offset = DnsName.from_wire(n.to_wire())
        assert decoded == n
        assert offset == len(n.to_wire())

    def test_wire_root(self):
        assert DnsName.root().to_wire() == b"\x00"

    def test_wire_truncated(self):
        with pytest.raises(NameError_):
            DnsName.from_wire(b"\x03ww")


class TestStructure:
    def test_parent(self):
        assert name("www.example.com.").parent() == name("example.com.")
        assert DnsName.root().parent() == DnsName.root()

    def test_concat_prepend(self):
        assert name("www.").concat(name("example.com.")) == name("www.example.com.")
        assert name("example.com.").prepend("www") == name("www.example.com.")

    def test_subdomain(self):
        assert name("a.b.c.").is_subdomain_of(name("b.c."))
        assert name("b.c.").is_subdomain_of(name("b.c."))
        assert not name("b.c.").is_proper_subdomain_of(name("b.c."))
        assert not name("x.c.").is_subdomain_of(name("b.c."))
        assert name("x.c.").is_subdomain_of(DnsName.root())

    def test_relativize(self):
        assert name("a.b.example.com.").relativize(name("example.com.")) == ("a", "b")
        with pytest.raises(NameError_):
            name("a.other.org.").relativize(name("example.com."))


class TestWildcard:
    def test_is_wildcard(self):
        assert name("*.example.com.").is_wildcard
        assert not name("x.example.com.").is_wildcard

    def test_wildcard_parent(self):
        assert name("*.example.com.").wildcard_parent() == name("example.com.")
        with pytest.raises(NameError_):
            name("example.com.").wildcard_parent()

    def test_with_wildcard(self):
        assert name("example.com.").with_wildcard() == name("*.example.com.")


class TestOrdering:
    def test_canonical_order_by_suffix(self):
        # RFC 4034 section 6.1 example ordering.
        ordered = [
            name("example.com."),
            name("a.example.com."),
            name("yljkjljk.a.example.com."),
            name("z.a.example.com."),
            name("zabc.a.example.com."),
            name("z.example.com."),
        ]
        assert sorted(ordered) == ordered

    def test_root_sorts_first(self):
        assert DnsName.root() < name("com.")

    def test_common_suffix_depth(self):
        assert common_suffix_depth(name("www.example.com."), name("cs.example.com.")) == 2
        assert common_suffix_depth(name("www.example.com."), name("www.example.com.")) == 3
        assert common_suffix_depth(name("a.org."), name("a.com.")) == 0


label_st = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)
name_st = st.lists(label_st, min_size=0, max_size=6).map(lambda ls: DnsName(tuple(ls)))


class TestProperties:
    @given(name_st)
    def test_text_roundtrip(self, n):
        assert DnsName.from_text(n.to_text()) == n

    @given(name_st)
    def test_wire_roundtrip(self, n):
        decoded, _ = DnsName.from_wire(n.to_wire())
        assert decoded == n

    @given(name_st, name_st)
    def test_order_total_and_consistent(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(name_st, name_st)
    def test_concat_subdomain(self, a, b):
        assert len(a) + len(b) <= MAX_NAME_DEPTH or True
        try:
            joined = a.concat(b)
        except NameError_:
            return
        assert joined.is_subdomain_of(b)

    @given(name_st)
    def test_parent_chain_reaches_root(self, n):
        steps = 0
        cur = n
        while cur != DnsName.root():
            cur = cur.parent()
            steps += 1
        assert steps == len(n)

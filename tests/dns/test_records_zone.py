"""Unit tests for rdata, records, RRsets and zone validation."""

import pytest

from repro.dns.name import DnsName
from repro.dns.rdata import (
    ARdata,
    AAAARdata,
    NSRdata,
    CNAMERdata,
    SOARdata,
    MXRdata,
    TXTRdata,
    SRVRdata,
    CAARdata,
    rdata_from_text,
)
from repro.dns.records import ResourceRecord, RRset, group_rrsets
from repro.dns.rtypes import RRType, RCode
from repro.dns.zone import Zone, ZoneValidationError, make_zone


def name(text):
    return DnsName.from_text(text)


ORIGIN = name("example.com.")


def soa(owner=ORIGIN):
    return ResourceRecord(
        owner,
        RRType.SOA,
        SOARdata(name("ns1.example.com."), name("admin.example.com."), 1),
    )


def ns(owner, target):
    return ResourceRecord(name(owner), RRType.NS, NSRdata(name(target)))


def a(owner, addr="192.0.2.1"):
    return ResourceRecord(name(owner), RRType.A, ARdata(addr))


class TestRdata:
    def test_a_validates_address(self):
        with pytest.raises(ValueError):
            ARdata("999.0.0.1")

    def test_aaaa_canonicalises(self):
        assert AAAARdata("2001:DB8:0:0:0:0:0:1").address == "2001:db8::1"

    def test_names_exposed(self):
        assert NSRdata(name("ns.example.com.")).names() == (name("ns.example.com."),)
        assert CNAMERdata(name("t.example.com.")).names() == (name("t.example.com."),)
        assert MXRdata(10, name("mx.example.com.")).names() == (name("mx.example.com."),)
        assert ARdata("192.0.2.1").names() == ()

    @pytest.mark.parametrize(
        "rtype,text",
        [
            (RRType.A, "192.0.2.1"),
            (RRType.AAAA, "2001:db8::1"),
            (RRType.NS, "ns1.example.com."),
            (RRType.CNAME, "www.example.com."),
            (RRType.MX, "10 mail.example.com."),
            (RRType.TXT, '"hello world"'),
            (RRType.SRV, "0 5 5060 sip.example.com."),
            (RRType.SOA, "ns1.example.com. admin.example.com. 1 3600 600 86400 300"),
            (RRType.CAA, '0 issue "ca.example.net"'),
        ],
    )
    def test_text_roundtrip(self, rtype, text):
        rdata = rdata_from_text(rtype, text)
        reparsed = rdata_from_text(rtype, rdata.to_text())
        assert reparsed == rdata

    def test_bad_rdata_raises(self):
        with pytest.raises(ValueError):
            rdata_from_text(RRType.MX, "not-a-number mail.example.com.")


class TestRecords:
    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(ORIGIN, RRType.NS, ARdata("192.0.2.1"))

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(ORIGIN, RRType.A, ARdata("192.0.2.1"), ttl=-1)

    def test_with_rname_synthesis(self):
        wild = ResourceRecord(name("*.example.com."), RRType.A, ARdata("192.0.2.9"))
        synth = wild.with_rname(name("foo.example.com."))
        assert synth.rname == name("foo.example.com.")
        assert synth.rdata == wild.rdata

    def test_group_rrsets(self):
        records = [a("w.example.com.", "192.0.2.1"), a("w.example.com.", "192.0.2.2"),
                   ns("example.com.", "ns1.example.com.")]
        sets = group_rrsets(records)
        assert len(sets) == 2
        assert len(sets[0]) == 2
        assert sets[0].rtype is RRType.A

    def test_rrset_rejects_foreign_record(self):
        with pytest.raises(ValueError):
            RRset(ORIGIN, RRType.A, (a("other.example.com."),))

    def test_rrset_rejects_empty(self):
        with pytest.raises(ValueError):
            RRset(ORIGIN, RRType.A, ())


def base_records():
    return [
        soa(),
        ns("example.com.", "ns1.example.com."),
        a("ns1.example.com."),
        a("www.example.com."),
    ]


class TestZoneValidation:
    def test_valid_zone(self):
        zone = make_zone("example.com.", base_records())
        assert len(zone) == 4

    def test_missing_soa(self):
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", base_records()[1:])

    def test_double_soa(self):
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", base_records() + [soa()])

    def test_missing_apex_ns(self):
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", [soa(), a("www.example.com.")])

    def test_out_of_bailiwick(self):
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", base_records() + [a("www.other.org.")])

    def test_cname_exclusivity(self):
        cname = ResourceRecord(
            name("www.example.com."), RRType.CNAME, CNAMERdata(name("web.example.com."))
        )
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", base_records() + [cname])

    def test_interior_wildcard_label_is_legal(self):
        # RFC 4592 section 2.1.1: only the leftmost asterisk is special;
        # "x.*.example.com." is an ordinary (if confusing) name.
        interior = ResourceRecord(
            DnsName(("x", "*", "example", "com")), RRType.A, ARdata("192.0.2.1")
        )
        zone = make_zone("example.com.", base_records() + [interior])
        assert interior in list(zone)

    def test_data_below_delegation_rejected(self):
        records = base_records() + [
            ns("sub.example.com.", "ns1.sub.example.com."),
            ResourceRecord(
                name("x.sub.example.com."), RRType.TXT, TXTRdata("oops")
            ),
        ]
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", records)

    def test_glue_below_delegation_allowed(self):
        records = base_records() + [
            ns("sub.example.com.", "ns1.sub.example.com."),
            a("ns1.sub.example.com."),
        ]
        zone = make_zone("example.com.", records)
        assert zone.delegation_points() == [name("sub.example.com.")]
        assert zone.is_below_cut(name("ns1.sub.example.com."))
        assert not zone.is_below_cut(name("sub.example.com."))

    def test_non_ns_data_at_cut_rejected(self):
        records = base_records() + [
            ns("sub.example.com.", "ns1.sub.example.com."),
            ResourceRecord(name("sub.example.com."), RRType.TXT, TXTRdata("oops")),
        ]
        with pytest.raises(ZoneValidationError):
            make_zone("example.com.", records)


class TestZoneQueries:
    def test_rrset_lookup(self):
        zone = make_zone("example.com.", base_records())
        rrset = zone.rrset(name("www.example.com."), RRType.A)
        assert rrset is not None and len(rrset) == 1
        assert zone.rrset(name("www.example.com."), RRType.MX) is None

    def test_enclosing_cut(self):
        records = base_records() + [
            ns("sub.example.com.", "ns1.sub.example.com."),
            a("ns1.sub.example.com."),
        ]
        zone = make_zone("example.com.", records)
        assert zone.enclosing_cut(name("deep.x.sub.example.com.")) == name("sub.example.com.")
        assert zone.enclosing_cut(name("www.example.com.")) is None

    def test_label_universe_excludes_wildcard(self):
        records = base_records() + [a("*.example.com.", "192.0.2.7")]
        zone = make_zone("example.com.", records)
        universe = zone.label_universe()
        assert "*" not in universe
        assert "www" in universe and "com" in universe

    def test_max_name_depth(self):
        zone = make_zone("example.com.", base_records())
        assert zone.max_name_depth() == 3

"""Round-trip tests for the wire codec."""

import pytest

from repro.dns.message import Query, Response
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.wire import (
    MAX_NAME_WIRE_LENGTH,
    NotAQueryError,
    WireError,
    build_error_response,
    build_query,
    build_response,
    build_truncated_response,
    parse_name,
    parse_query,
    parse_response,
)
from repro.spec import reference_resolve
from repro.zonegen import evaluation_zone


def name(text):
    return DnsName.from_text(text)


class TestQueryRoundTrip:
    def test_basic(self):
        query = Query(name("www.example.com."), RRType.A)
        txid, parsed = parse_query(build_query(0x1234, query))
        assert txid == 0x1234 and parsed == query

    @pytest.mark.parametrize("qtype", [RRType.MX, RRType.ANY, RRType.SOA, RRType.AAAA])
    def test_types(self, qtype):
        query = Query(name("a.b.example.com."), qtype)
        _, parsed = parse_query(build_query(1, query))
        assert parsed.qtype is qtype

    def test_rejects_response_bit(self):
        # QR=1 raises the *distinct* subclass: servers must drop these
        # silently (RFC 1035 7.1), unlike ordinary WireErrors -> FORMERR.
        query = Query(name("www.example.com."), RRType.A)
        wire = bytearray(build_query(1, query))
        wire[2] |= 0x80
        with pytest.raises(NotAQueryError):
            parse_query(bytes(wire))
        assert issubclass(NotAQueryError, WireError)

    def test_rejects_truncated(self):
        query = Query(name("www.example.com."), RRType.A)
        with pytest.raises(WireError):
            parse_query(build_query(1, query)[:10])


class TestCompression:
    def test_pointer_parse(self):
        # Name at offset 12; a second name at the end points back to it.
        base = name("example.com.").to_wire()
        wire = b"\x00" * 12 + base + b"\x03www" + b"\xc0\x0c"
        parsed, offset = parse_name(wire, 12 + len(base))
        assert parsed == name("www.example.com.")

    def test_pointer_loop_rejected(self):
        wire = b"\x00" * 12 + b"\xc0\x0c"
        with pytest.raises(WireError):
            parse_name(wire, 12)


class TestResponseRoundTrip:
    def _responses(self):
        zone = evaluation_zone()
        for qname, qtype in [
            ("www.example.com.", RRType.A),
            ("example.com.", RRType.ANY),
            ("alias.example.com.", RRType.A),
            ("zz.wild.example.com.", RRType.MX),
            ("deep.sub.example.com.", RRType.A),
            ("nope.example.com.", RRType.A),
        ]:
            query = Query(DnsName.from_text(qname), qtype)
            yield reference_resolve(zone, query)

    def test_reference_responses_roundtrip(self):
        for response in self._responses():
            txid, parsed = parse_response(build_response(7, response))
            assert txid == 7
            assert parsed.rcode is response.rcode
            assert parsed.aa == response.aa
            assert parsed.semantically_equal(
                Response(
                    query=response.query,
                    rcode=response.rcode,
                    aa=response.aa,
                    answer=parsed.answer,
                    authority=parsed.authority,
                    additional=parsed.additional,
                )
            )
            # Record counts survive.
            assert len(parsed.answer) == len(response.answer)
            assert len(parsed.authority) == len(response.authority)
            assert len(parsed.additional) == len(response.additional)

    def test_aa_flag_encoded(self):
        response = next(iter(self._responses()))
        wire = build_response(1, response)
        _, parsed = parse_response(wire)
        assert parsed.aa == response.aa

    def test_rcode_encoded(self):
        zone = evaluation_zone()
        query = Query(name("nope.example.com."), RRType.A)
        response = reference_resolve(zone, query)
        assert response.rcode is RCode.NXDOMAIN
        _, parsed = parse_response(build_response(1, response))
        assert parsed.rcode is RCode.NXDOMAIN


HEADER = b"\x12\x34" + b"\x00" * 10  # txid 0x1234, zero flags/counts


class TestMalformedNames:
    """The hardening the serving path relies on: hostile qnames raise
    WireError (-> FORMERR) instead of over-reading or mis-parsing."""

    def test_truncated_qname_label(self):
        # Length byte promises 7 octets; the packet ends after 4.
        wire = HEADER[:4] + b"\x00\x01" + HEADER[6:] + b"\x07exam"
        with pytest.raises(WireError):
            parse_query(wire)

    def test_truncated_mid_name(self):
        # A full valid query cut anywhere inside the question.
        full = build_query(1, Query(name("www.example.com."), RRType.A))
        for cut in range(13, len(full) - 1):
            with pytest.raises(WireError):
                parse_query(full[:cut])

    def test_qname_over_255_octets_rejected(self):
        # Five maximal 63-octet labels: 5*64 + 1 = 321 wire octets.
        label = b"\x3f" + b"a" * 63
        overlong = label * 5 + b"\x00"
        assert len(overlong) > MAX_NAME_WIRE_LENGTH
        with pytest.raises(WireError, match="255 octets"):
            parse_name(b"\x00" * 12 + overlong, 12)

    def test_qname_at_255_octets_accepted(self):
        # 3*64 + 3*20 + 1 = 253 octets: legal, if unusual.
        labels = [b"\x3f" + b"a" * 63] * 3 + [b"\x13" + b"b" * 19] * 3
        wire = b"\x00" * 12 + b"".join(labels) + b"\x00"
        parsed, _ = parse_name(wire, 12)
        assert len(parsed.labels) == 6

    @pytest.mark.parametrize("length_byte", [0x40, 0x80, 0xBF])
    def test_reserved_label_length_bytes_rejected(self, length_byte):
        wire = b"\x00" * 12 + bytes([length_byte]) + b"a" * 10 + b"\x00"
        with pytest.raises(WireError, match="reserved"):
            parse_name(wire, 12)


class TestErrorResponses:
    def test_header_only_formerr(self):
        # No parsed question to echo: 12 bytes, QR set, qdcount 0.
        wire = build_error_response(0xABCD, RCode.FORMERR)
        assert len(wire) == 12
        assert wire[:2] == b"\xab\xcd"
        flags = int.from_bytes(wire[2:4], "big")
        assert flags & 0x8000
        assert flags & 0xF == int(RCode.FORMERR)
        assert wire[4:6] == b"\x00\x00"  # qdcount 0

    def test_servfail_echoes_question(self):
        query = Query(name("www.example.com."), RRType.A)
        wire = build_error_response(7, RCode.SERVFAIL, query)
        txid, parsed = parse_response(wire)
        assert txid == 7
        assert parsed.rcode is RCode.SERVFAIL
        assert parsed.query == query
        assert not parsed.answer and not parsed.authority


class TestTruncatedResponses:
    def test_tc_round_trip(self):
        # RFC 1035 4.2.1: QR|TC set, question echoed, all sections empty
        # — the overload reply that pushes the client onto TCP.
        query = Query(name("www.example.com."), RRType.A)
        wire = build_truncated_response(0x5150, query)
        txid, parsed = parse_response(wire)
        assert txid == 0x5150
        assert parsed.tc is True
        assert parsed.rcode is RCode.NOERROR
        assert parsed.query == query
        assert parsed.answer == ()
        assert parsed.authority == ()
        assert parsed.additional == ()

    def test_tc_flag_bit_on_the_wire(self):
        query = Query(name("example.com."), RRType.SOA)
        wire = build_truncated_response(1, query)
        flags = int.from_bytes(wire[2:4], "big")
        assert flags & 0x0200  # TC
        assert flags & 0x8000  # QR

    def test_build_response_carries_tc(self):
        # The generic builder honours Response.tc too (parse symmetry).
        query = Query(name("www.example.com."), RRType.A)
        full = Response(query=query, rcode=RCode.NOERROR, aa=True, tc=True)
        _, parsed = parse_response(build_response(9, full))
        assert parsed.tc is True

    def test_tc_is_a_transport_artifact_not_semantic(self):
        # Semantic equality drives the self-checker and differential
        # tester; a truncation decision must not register as divergence.
        query = Query(name("www.example.com."), RRType.A)
        plain = Response(query=query, rcode=RCode.NOERROR, aa=True)
        truncated = Response(query=query, rcode=RCode.NOERROR, aa=True,
                             tc=True)
        assert plain.semantically_equal(truncated)

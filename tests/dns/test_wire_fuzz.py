"""Fuzzing the wire codec: arbitrary bytes must never crash the parser
with anything but WireError (the server loop relies on this)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.wire import WireError, build_query, parse_query, parse_response


class TestParserRobustness:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=96))
    def test_parse_query_total(self, wire):
        try:
            parse_query(wire)
        except WireError:
            pass  # the only acceptable failure mode

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=96))
    def test_parse_response_total(self, wire):
        try:
            parse_response(wire)
        except (WireError, ValueError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        st.binary(min_size=1, max_size=16),
        st.integers(0, 40),
    )
    def test_truncations_of_valid_query(self, garbage, cut):
        query = Query(DnsName.from_text("www.example.com."), RRType.A)
        wire = build_query(0x1234, query)[:cut] + garbage
        try:
            parse_query(wire)
        except WireError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 255))
    def test_bitflips_of_valid_query(self, position_seed, flip):
        query = Query(DnsName.from_text("a.b.example.com."), RRType.MX)
        wire = bytearray(build_query(7, query))
        wire[position_seed % len(wire)] ^= flip
        try:
            parse_query(bytes(wire))
        except WireError:
            pass

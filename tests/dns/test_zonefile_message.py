"""Unit tests for the zone-file parser, messages and the label interner."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.interner import LabelInterner, LABEL_SPACING, WILDCARD_CODE
from repro.dns.message import Query, Response, response_diff
from repro.dns.name import DnsName
from repro.dns.rdata import ARdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RCode, RRType
from repro.dns.zonefile import ZoneParseError, parse_zone_text, zone_to_text

ZONE_TEXT = """\
$ORIGIN example.com.
$TTL 600
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www 300 IN A 192.0.2.2
  IN AAAA 2001:db8::2  ; continuation: same owner (www)
*.wild IN A 192.0.2.9
mail IN MX 10 mx.example.com.
mx IN A 192.0.2.3
"""


def name(text):
    return DnsName.from_text(text)


class TestZoneFile:
    def test_parse_basic(self):
        zone = parse_zone_text(ZONE_TEXT)
        assert zone.origin == name("example.com.")
        assert len(zone) == 8

    def test_continuation_owner(self):
        zone = parse_zone_text(ZONE_TEXT)
        aaaa = zone.rrset(name("www.example.com."), RRType.AAAA)
        assert aaaa is not None

    def test_default_ttl_applied(self):
        zone = parse_zone_text(ZONE_TEXT)
        ns1 = zone.rrset(name("ns1.example.com."), RRType.A)
        assert ns1.records[0].ttl == 600

    def test_explicit_ttl(self):
        zone = parse_zone_text(ZONE_TEXT)
        www = zone.rrset(name("www.example.com."), RRType.A)
        assert www.records[0].ttl == 300

    def test_roundtrip(self):
        zone = parse_zone_text(ZONE_TEXT)
        again = parse_zone_text(zone_to_text(zone))
        assert set(r.sort_key() for r in zone) == set(r.sort_key() for r in again)

    def test_origin_argument(self):
        text = "@ IN SOA ns1 admin 1 3600 600 86400 300\n@ IN NS ns1\nns1 IN A 192.0.2.1\n"
        zone = parse_zone_text(text, origin="example.org.")
        assert zone.origin == name("example.org.")

    def test_unknown_type(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$ORIGIN e.com.\n@ IN BOGUS data\n")

    def test_unknown_directive(self):
        with pytest.raises(ZoneParseError):
            parse_zone_text("$NOPE x\n")

    def test_error_carries_line(self):
        with pytest.raises(ZoneParseError) as err:
            parse_zone_text("$ORIGIN e.com.\n@ IN SOA ns1.e.com. a.e.com. 1\nbad..name IN A 1.2.3.4\n")
        assert err.value.lineno == 3


def make_response(**overrides):
    query = Query(name("www.example.com."), RRType.A)
    rec = ResourceRecord(name("www.example.com."), RRType.A, ARdata("192.0.2.2"))
    base = dict(query=query, rcode=RCode.NOERROR, aa=True, answer=(rec,))
    base.update(overrides)
    return Response(**base)


class TestResponse:
    def test_semantic_equality_ignores_order(self):
        r1 = ResourceRecord(name("w.example.com."), RRType.A, ARdata("192.0.2.1"))
        r2 = ResourceRecord(name("w.example.com."), RRType.A, ARdata("192.0.2.2"))
        assert make_response(answer=(r1, r2)).semantically_equal(
            make_response(answer=(r2, r1))
        )

    def test_semantic_equality_ignores_ttl(self):
        r1 = ResourceRecord(name("w.example.com."), RRType.A, ARdata("192.0.2.1"), ttl=1)
        r2 = ResourceRecord(name("w.example.com."), RRType.A, ARdata("192.0.2.1"), ttl=9)
        assert make_response(answer=(r1,)).semantically_equal(make_response(answer=(r2,)))

    def test_diff_reports_flag_and_rcode(self):
        got = make_response(aa=False, rcode=RCode.NXDOMAIN, answer=())
        want = make_response()
        diffs = response_diff(got, want)
        assert any("rcode" in d for d in diffs)
        assert any("aa flag" in d for d in diffs)
        assert any("missing" in d for d in diffs)

    def test_diff_empty_when_equal(self):
        assert response_diff(make_response(), make_response()) == []


class TestInterner:
    def test_order_preserved(self):
        interner = LabelInterner(["com", "example", "www", "cs", "zoo"])
        labels = sorted(["com", "example", "www", "cs", "zoo"])
        codes = [interner.code(lab) for lab in labels]
        assert codes == sorted(codes)

    def test_wildcard_smallest(self):
        interner = LabelInterner(["aaa", "zzz"])
        assert interner.code("*") == WILDCARD_CODE
        assert interner.code("*") < interner.code("aaa")

    def test_exact_decode(self):
        interner = LabelInterner(["com", "org"])
        for lab in ("com", "org", "*"):
            assert interner.decode(interner.code(lab)) == lab

    def test_gap_decode_between(self):
        interner = LabelInterner(["com", "net"])
        gap = interner.code("com") + LABEL_SPACING // 2
        fresh = interner.decode(gap)
        assert fresh is not None
        assert "com" < fresh < "net"

    def test_gap_decode_below_first(self):
        interner = LabelInterner(["com"])
        fresh = interner.decode(interner.code("com") - 5)
        assert fresh is not None and fresh < "com"

    def test_gap_decode_above_last(self):
        interner = LabelInterner(["com"])
        fresh = interner.decode(interner.code("com") + 5)
        assert fresh is not None and fresh > "com"

    def test_out_of_range(self):
        interner = LabelInterner(["com"])
        assert interner.decode(0) is None
        assert interner.decode(interner.max_code + 1) is None

    def test_name_roundtrip(self):
        interner = LabelInterner(["com", "example", "www"])
        n = name("www.example.com.")
        assert interner.decode_name(interner.encode_name(n)) == n

    def test_encode_name_reversed(self):
        interner = LabelInterner(["com", "example", "www"])
        codes = interner.encode_name(name("www.example.com."))
        assert codes[0] == interner.code("com")
        assert codes[-1] == interner.code("www")

    @given(st.lists(st.from_regex(r"[a-z]{1,8}", fullmatch=True), min_size=1, max_size=20))
    def test_property_order_isomorphism(self, labels):
        interner = LabelInterner(labels)
        unique = sorted(set(labels))
        for a, b in zip(unique, unique[1:]):
            assert interner.code(a) < interner.code(b)

    @given(
        st.lists(st.from_regex(r"[a-z]{1,8}", fullmatch=True), min_size=1, max_size=10),
        st.integers(min_value=1, max_value=10 * LABEL_SPACING),
    )
    def test_property_gap_decode_ordering(self, labels, code):
        interner = LabelInterner(labels)
        if code > interner.max_code:
            return
        decoded = interner.decode(code)
        if decoded is None:
            return
        # Re-encoding an interned decode gives the code back; fresh labels
        # must sort consistently with their gap position.
        if interner.has(decoded):
            assert interner.code(decoded) == code
        else:
            for lab in interner.universe:
                if interner.code(lab) < code:
                    assert lab < decoded
                else:
                    assert decoded < lab

"""Tests for the v4.0 ALIAS-flattening feature and its spec adaptation.

The paper: "We also adapt the top-level specification to accommodate new
features. This process is still ongoing with the active development and
maintenance of our DNS service." This is that flow, reproduced: a new
engine iteration adds an in-house record type, the top-level specification
(and the reference resolver) gain the matching clause, the new version
verifies, and the feature-less engine is refuted on feature zones while
remaining verified on plain zones.
"""

import pytest

from repro.core import verify_engine
from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.zone import ZoneValidationError
from repro.dns.zonefile import parse_zone_text
from repro.spec import reference_resolve
from repro.testing import differential_test
from repro.zonegen import alias_zone, evaluation_zone


def name(text):
    return DnsName.from_text(text)


class TestZoneValidation:
    BASE = (
        "$ORIGIN e.com.\n"
        "@ IN SOA ns1.e.com. a.e.com. 1 3600 600 86400 300\n"
        "@ IN NS ns1\n"
        "ns1 IN A 192.0.2.1\n"
    )

    def test_alias_with_a_rejected(self):
        with pytest.raises(ZoneValidationError):
            parse_zone_text(self.BASE + "x IN ALIAS ns1\nx IN A 192.0.2.2\n")

    def test_alias_with_cname_rejected(self):
        with pytest.raises(ZoneValidationError):
            parse_zone_text(self.BASE + "x IN ALIAS ns1\nx IN CNAME ns1\n")

    def test_double_alias_rejected(self):
        with pytest.raises(ZoneValidationError):
            parse_zone_text(self.BASE + "x IN ALIAS ns1\nx IN ALIAS ns1.e.com.\n")

    def test_wildcard_alias_rejected(self):
        with pytest.raises(ZoneValidationError):
            parse_zone_text(self.BASE + "*.x IN ALIAS ns1\n")

    def test_alias_with_mx_txt_allowed(self):
        zone = parse_zone_text(
            self.BASE + "x IN ALIAS ns1\nx IN MX 10 ns1\nx IN TXT \"ok\"\n"
        )
        assert zone.rrset(name("x.e.com."), RRType.ALIAS) is not None


class TestReferenceSemantics:
    def test_apex_flattening(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("example.com."), RRType.A))
        assert resp.rcode is RCode.NOERROR and resp.aa
        assert len(resp.answer) == 2  # both target A records
        assert all(r.rname == name("example.com.") for r in resp.answer)
        assert all(r.rtype is RRType.A for r in resp.answer)

    def test_aaaa_flattening(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("example.com."), RRType.AAAA))
        assert len(resp.answer) == 1
        assert resp.answer[0].rname == name("example.com.")

    def test_dangling_target_nodata(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("dangling.example.com."), RRType.A))
        assert resp.rcode is RCode.NOERROR and resp.aa
        assert not resp.answer
        assert [r.rtype for r in resp.authority] == [RRType.SOA]

    def test_external_target_nodata(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("external.example.com."), RRType.A))
        assert not resp.answer and resp.rcode is RCode.NOERROR

    def test_any_returns_raw_alias(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("example.com."), RRType.ANY))
        types = {r.rtype for r in resp.answer}
        assert RRType.ALIAS in types  # no flattening for ANY

    def test_alias_qtype_returns_record(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("example.com."), RRType.ALIAS))
        assert [r.rtype for r in resp.answer] == [RRType.ALIAS]

    def test_mx_at_aliased_name_still_answers(self):
        zone = alias_zone()
        resp = reference_resolve(zone, Query(name("example.com."), RRType.MX))
        assert [r.rtype for r in resp.answer] == [RRType.MX]


class TestEngineV4:
    def test_differential_clean(self):
        assert differential_test(alias_zone(), "v4.0").clean

    def test_v4_verifies_on_feature_zone(self):
        result = verify_engine(alias_zone(), "v4.0")
        assert result.verified, result.describe()

    def test_v4_verifies_on_plain_zone(self):
        result = verify_engine(evaluation_zone(), "v4.0")
        assert result.verified, result.describe()

    def test_featureless_engine_refuted_on_feature_zone(self):
        result = verify_engine(alias_zone(), "verified")
        assert not result.verified
        # The counterexamples are exactly the flattened queries.
        assert any(
            bug.query is not None and bug.query.qtype in (RRType.A, RRType.AAAA)
            for bug in result.bugs
        )

    def test_featureless_engine_still_fine_on_plain_zones(self):
        result = verify_engine(evaluation_zone(), "verified")
        assert result.verified

"""Concrete (native Python) semantic alignment tests.

GoPy modules run under CPython, so before any symbolic execution we can
check that the `verified` engine and the top-level specification agree on
plenty of concrete queries over realistic zones, and that each seeded bug
actually manifests concretely. These tests pin the ground truth that the
verification pipeline is later expected to prove (or refute per version).
"""

import pytest

from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.zonefile import parse_zone_text
from repro.engine.control import (
    ENGINE_VERSIONS,
    build_domain_tree,
    build_flat_zone,
    run_engine_concrete,
)
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response
from repro.spec import toplevel

ZONE_TEXT = """\
$ORIGIN example.com.
@ IN SOA ns1.example.com. admin.example.com. 1 3600 600 86400 300
@ IN NS ns1
@ IN NS ns2
@ IN MX 10 mail
ns1 IN A 192.0.2.1
ns2 IN A 192.0.2.2
ns2 IN AAAA 2001:db8::2
mail IN A 192.0.2.3
www IN A 192.0.2.10
www IN TXT "hello"
alias IN CNAME www
chain IN CNAME alias
external IN CNAME www.other.org.
*.wild IN A 192.0.2.20
*.wcname IN CNAME www
deep.a.b IN A 192.0.2.30
sub IN NS ns1.sub
sub IN NS ns2.sub
ns1.sub IN A 192.0.2.40
ns2.sub IN A 192.0.2.41
mxhost IN MX 20 ns2
"""


EXTRA_LABELS = ["zz", "x", "y", "q", "host", "other", "org"]


@pytest.fixture(scope="module")
def setup():
    zone = parse_zone_text(ZONE_TEXT)
    encoder = ZoneEncoder(zone, extra_labels=EXTRA_LABELS)
    tree = build_domain_tree(encoder)
    flat = build_flat_zone(encoder)
    return zone, encoder, tree, flat


def run_spec(encoder, flat, qname_codes, qtype):
    resp = Response()
    toplevel.rrlookup(flat, list(qname_codes), int(qtype), resp)
    return resp


def run_version(version, tree, qname_codes, qtype):
    return run_engine_concrete(ENGINE_VERSIONS[version], tree, qname_codes, int(qtype))


def decode(encoder, qname, qtype, resp):
    from repro.dns.message import Query

    return encoder.decode_response(Query(qname, qtype), resp)


def all_test_queries(zone, encoder):
    """Names in and around the zone crossed with all record types."""
    names = set(zone.names())
    extra = []
    for name in list(names):
        extra.append(name.prepend("zz"))
        if len(name) > 2:
            extra.append(name.parent())
    names.update(extra)
    names.add(DnsName.from_text("b.example.com."))  # ENT
    names.add(DnsName.from_text("x.y.wild.example.com."))  # multi-label wildcard
    names.add(DnsName.from_text("q.wcname.example.com."))  # wildcard CNAME
    names.add(DnsName.from_text("deep.sub.example.com."))  # below cut
    names.add(DnsName.from_text("other.org."))  # out of zone
    types = [RRType.A, RRType.AAAA, RRType.NS, RRType.MX, RRType.TXT,
             RRType.CNAME, RRType.SOA, RRType.ANY]
    for name in sorted(names):
        for qtype in types:
            yield name, qtype


def encode_query_name(encoder, name):
    """Encode any name, interning labels missing from the zone on the fly
    is not possible — skip names with unknown labels except via extension
    of the interner universe (tests only use known labels + 'zz'/'b' etc.,
    which we add here)."""
    return [
        encoder.interner.code(lab) if encoder.interner.has(lab) else None
        for lab in name.reversed_labels
    ]


class TestVerifiedMatchesSpec:
    def test_exhaustive_concrete_agreement(self, setup):
        zone, encoder, tree, flat = setup
        checked = 0
        for name, qtype in all_test_queries(zone, encoder):
            codes = [encoder.interner.code(lab) for lab in name.reversed_labels]
            engine_resp = run_version("verified", tree, codes, qtype)
            spec_resp = run_spec(encoder, flat, codes, qtype)
            assert engine_resp.rcode == spec_resp.rcode, (name, qtype)
            assert engine_resp.aa == spec_resp.aa, (name, qtype)
            for section in ("answer", "authority", "additional"):
                got = [(tuple(r.rname), r.rtype, r.rdata_id) for r in getattr(engine_resp, section)]
                want = [(tuple(r.rname), r.rtype, r.rdata_id) for r in getattr(spec_resp, section)]
                assert got == want, (name.to_text(), qtype.name, section, got, want)
            checked += 1
        assert checked > 200


def q(encoder, text):
    name = DnsName.from_text(text)
    return [encoder.interner.code(lab) for lab in name.reversed_labels]


class TestSeededBugsManifest:
    def test_v1_aa_missing_on_wildcard(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "a.wild.example.com.")
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v1.0", tree, codes, RRType.A)
        assert good.aa is True and bad.aa is False

    def test_v1_extraneous_authority(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "www.example.com.")
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v1.0", tree, codes, RRType.A)
        assert len(bad.authority) > len(good.authority)

    def test_v1_mx_matches_txt(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "www.example.com.")
        bad = run_version("v1.0", tree, codes, RRType.MX)
        good = run_version("verified", tree, codes, RRType.MX)
        # www has TXT but no MX: verified answers NODATA, v1.0 leaks TXT.
        assert len(good.answer) == 0 and len(bad.answer) == 1

    def test_v2_incomplete_referral_glue(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "host.sub.example.com.")
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v2.0", tree, codes, RRType.A)
        assert len(good.additional) == 2 and len(bad.additional) == 1

    def test_v2_wildcard_single_label_only(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "x.y.wild.example.com.")
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v2.0", tree, codes, RRType.A)
        assert good.rcode == 0 and len(good.answer) == 1
        assert bad.rcode == 3  # wrongly NXDOMAIN

    def test_v2_wildcard_mx_loses_glue(self, setup):
        zone, encoder, tree, flat = setup
        # Wildcard MX would need the wild zone to hold MX; use mxhost (non
        # wildcard) to show glue works, then a synthesized answer to show
        # the skip. Reuse *.wild with qtype A has no glue either way, so
        # craft the check via v2's synth flag using the wcname CNAME chain:
        codes = q(encoder, "mxhost.example.com.")
        good = run_version("verified", tree, codes, RRType.MX)
        assert len(good.additional) == 2  # ns2 A + AAAA

    def test_v2_cname_glue_extraneous(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "alias.example.com.")
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v2.0", tree, codes, RRType.A)
        assert len(bad.additional) > len(good.additional)

    def test_v3_ent_misjudged(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "b.example.com.")  # ENT above deep.a.b
        good = run_version("verified", tree, codes, RRType.A)
        bad = run_version("v3.0", tree, codes, RRType.A)
        assert good.rcode == 0  # NODATA
        assert bad.rcode == 3  # wrongly NXDOMAIN

    def test_dev_runtime_error_on_ent(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "b.example.com.")
        with pytest.raises(IndexError):
            run_version("dev", tree, codes, RRType.A)

    def test_buggy_versions_agree_elsewhere(self, setup):
        zone, encoder, tree, flat = setup
        codes = q(encoder, "ns1.example.com.")
        responses = [
            run_version(v, tree, codes, RRType.A)
            for v in ("v1.0", "v2.0", "v3.0", "dev", "verified")
        ]
        for resp in responses[1:]:
            assert [r.rdata_id for r in resp.answer] == [
                r.rdata_id for r in responses[0].answer
            ]

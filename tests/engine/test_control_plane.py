"""Direct tests of the control plane: zone -> domain tree construction.

The data plane's correctness proof assumes the control plane builds the
tree the top-level spec's flat view describes (section 6.5); these tests
pin that construction: node set (including empty non-terminals), BST
ordering by label code, delegation flags, rrset grouping/order, and RR
object sharing between the two views.
"""

import pytest

from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.engine.control import build_domain_tree, build_flat_zone
from repro.engine.encoding import ZoneEncoder
from repro.zonegen import evaluation_zone, generate_zone


@pytest.fixture(scope="module")
def built():
    zone = evaluation_zone()
    encoder = ZoneEncoder(zone)
    return zone, encoder, build_domain_tree(encoder), build_flat_zone(encoder)


def collect_nodes(root):
    out = {}

    def walk_level(node):
        if node is None:
            return
        walk_level(node.left)
        out[tuple(node.name)] = node
        walk_level(node.down)
        walk_level(node.right)

    walk_level(root)
    return out


class TestTreeShape:
    def test_every_owner_and_ent_is_a_node(self, built):
        zone, encoder, tree, _ = built
        nodes = collect_nodes(tree.root)
        for record in zone:
            name = record.rname
            while len(name) >= len(zone.origin):
                assert tuple(encoder.encode_name(name)) in nodes, name.to_text()
                if name == zone.origin:
                    break
                name = name.parent()

    def test_ent_nodes_have_no_rrsets(self, built):
        zone, encoder, tree, _ = built
        nodes = collect_nodes(tree.root)
        ent = nodes[tuple(encoder.encode_name(DnsName.from_text("ent.wild.example.com.")))]
        assert ent.rrsets == []

    def test_bst_invariant_per_level(self, built):
        zone, encoder, tree, _ = built

        def check_bst(node, lo, hi):
            if node is None:
                return
            own = node.name[-1]
            assert (lo is None or lo < own) and (hi is None or own < hi)
            check_bst(node.left, lo, own)
            check_bst(node.right, own, hi)
            check_bst(node.down, None, None)

        check_bst(tree.root.down, None, None)

    def test_delegation_flags(self, built):
        zone, encoder, tree, _ = built
        nodes = collect_nodes(tree.root)
        sub = nodes[tuple(encoder.encode_name(DnsName.from_text("sub.example.com.")))]
        assert sub.is_delegation
        apex = nodes[tuple(encoder.encode_name(zone.origin))]
        assert apex.is_apex and not apex.is_delegation
        # Glue below the cut is present but unflagged.
        glue = nodes[tuple(encoder.encode_name(DnsName.from_text("ns1.sub.example.com.")))]
        assert not glue.is_delegation

    def test_wildcard_child_has_smallest_label(self, built):
        zone, encoder, tree, _ = built
        nodes = collect_nodes(tree.root)
        wild = nodes[tuple(encoder.encode_name(DnsName.from_text("*.wild.example.com.")))]
        assert wild.name[-1] == 1  # WILDCARD code

    def test_rrsets_grouped_and_type_ordered(self, built):
        zone, encoder, tree, _ = built
        nodes = collect_nodes(tree.root)
        wild = nodes[tuple(encoder.encode_name(DnsName.from_text("*.wild.example.com.")))]
        types = [rs.rtype for rs in wild.rrsets]
        assert types == sorted(types)
        assert int(RRType.A) in types and int(RRType.MX) in types


class TestViewSharing:
    def test_rr_objects_shared_between_views(self, built):
        zone, encoder, tree, flat = built
        tree_rrs = {
            id(rr)
            for node in collect_nodes(tree.root).values()
            for rs in node.rrsets
            for rr in rs.rrs
        }
        flat_rrs = {id(rr) for rr in flat.rrs}
        assert tree_rrs == flat_rrs

    def test_name_lists_shared(self, built):
        zone, encoder, tree, flat = built
        # Encoding the same name twice yields the same list object.
        a = encoder.encode_name(zone.origin)
        b = encoder.encode_name(zone.origin)
        assert a is b

    def test_flat_zone_canonically_sorted(self, built):
        zone, encoder, tree, flat = built
        keys = [(tuple(rr.rname), rr.rtype) for rr in flat.rrs]
        assert keys == sorted(keys)


class TestRandomZones:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_construction_invariants_hold(self, seed):
        zone = generate_zone(seed=seed, index=0)
        encoder = ZoneEncoder(zone)
        tree = build_domain_tree(encoder)
        nodes = collect_nodes(tree.root)
        for record in zone:
            assert tuple(encoder.encode_name(record.rname)) in nodes
        assert nodes[tuple(encoder.encode_name(zone.origin))].is_apex

"""Unit tests for the GoPy frontend: structure of emitted IR and rejection
of constructs outside the subset."""

import pytest

from repro.frontend import GoPyError, compile_source
from repro.ir import (
    Alloca,
    Call,
    CondBr,
    GEP,
    ICmp,
    ListType,
    Load,
    Panic,
    PointerType,
    Ret,
    Store,
    print_function,
    print_module,
    validate_function,
)
from repro.ir.types import INT, BOOL


def compile_one(source, name="f"):
    module = compile_source(source)
    return module.get_function(name)


def all_instructions(function):
    for block in function.blocks.values():
        for insn in block.instructions:
            yield insn


def panic_kinds(function):
    return [
        block.terminator.kind
        for block in function.blocks.values()
        if isinstance(block.terminator, Panic)
    ]


class TestBasics:
    def test_empty_void_function(self):
        fn = compile_one("def f() -> None:\n    pass\n")
        validate_function(fn)
        terminators = [b.terminator for b in fn.blocks.values()]
        assert any(isinstance(t, Ret) for t in terminators)

    def test_return_int(self):
        fn = compile_one("def f() -> int:\n    return 42\n")
        rets = [
            b.terminator for b in fn.blocks.values() if isinstance(b.terminator, Ret)
        ]
        assert len(rets) == 1

    def test_params_allocated(self):
        fn = compile_one("def f(a: int, b: bool) -> int:\n    return a\n")
        allocas = [i for i in all_instructions(fn) if isinstance(i, Alloca)]
        assert len(allocas) == 2
        assert fn.params == (("a", INT), ("b", BOOL))

    def test_arithmetic(self):
        fn = compile_one("def f(a: int) -> int:\n    return a * 2 + 1 - 3\n")
        validate_function(fn)

    def test_locals_and_reassignment(self):
        fn = compile_one(
            "def f(a: int) -> int:\n"
            "    x = a + 1\n"
            "    x = x * 2\n"
            "    return x\n"
        )
        validate_function(fn)

    def test_missing_return_panics(self):
        fn = compile_one(
            "def f(a: int) -> int:\n"
            "    if a > 0:\n"
            "        return 1\n"
        )
        assert "missing-return" in panic_kinds(fn)

    def test_augmented_assignment(self):
        fn = compile_one("def f(a: int) -> int:\n    a += 5\n    return a\n")
        validate_function(fn)


class TestControlFlow:
    def test_if_else(self):
        fn = compile_one(
            "def f(a: int) -> int:\n"
            "    if a > 0:\n"
            "        return 1\n"
            "    else:\n"
            "        return 0\n"
        )
        condbrs = [
            b.terminator for b in fn.blocks.values() if isinstance(b.terminator, CondBr)
        ]
        assert len(condbrs) == 1

    def test_while_loop_backedge(self):
        fn = compile_one(
            "def f(n: int) -> int:\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while i < n:\n"
            "        total = total + i\n"
            "        i = i + 1\n"
            "    return total\n"
        )
        validate_function(fn)
        labels = set(fn.blocks)
        successors = {
            target for b in fn.blocks.values() for target in b.terminator.successors()
        }
        assert successors <= labels

    def test_break_continue(self):
        fn = compile_one(
            "def f(n: int) -> int:\n"
            "    i = 0\n"
            "    while True:\n"
            "        i = i + 1\n"
            "        if i > n:\n"
            "            break\n"
            "        if i == 2:\n"
            "            continue\n"
            "    return i\n"
        )
        validate_function(fn)

    def test_for_range(self):
        fn = compile_one(
            "def f(n: int) -> int:\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        validate_function(fn)

    def test_short_circuit_and_produces_blocks(self):
        fn = compile_one(
            "def f(a: int, b: int) -> bool:\n"
            "    return a > 0 and b > 0\n"
        )
        condbrs = [
            b.terminator for b in fn.blocks.values() if isinstance(b.terminator, CondBr)
        ]
        assert len(condbrs) >= 1

    def test_conditional_expression(self):
        fn = compile_one("def f(a: int) -> int:\n    return 1 if a > 0 else 2\n")
        validate_function(fn)


STRUCT_SOURCE = """
class Node(GoStruct):
    value: int
    next: "Node"

def get(n: Node) -> int:
    return n.value

def set_value(n: Node, v: int) -> None:
    n.value = v

def make(v: int) -> Node:
    return Node(value=v)
"""


class TestStructs:
    def test_struct_registered(self):
        module = compile_source(STRUCT_SOURCE)
        struct = module.types.get("Node")
        assert struct.field_index("value") == 0
        assert isinstance(struct.field_type(1), PointerType)

    def test_field_load_has_nil_check(self):
        module = compile_source(STRUCT_SOURCE)
        fn = module.get_function("get")
        assert "nil-dereference" in panic_kinds(fn)
        assert any(isinstance(i, GEP) for i in all_instructions(fn))

    def test_field_store(self):
        module = compile_source(STRUCT_SOURCE)
        fn = module.get_function("set_value")
        stores = [i for i in all_instructions(fn) if isinstance(i, Store)]
        assert stores

    def test_constructor_uses_newobject(self):
        module = compile_source(STRUCT_SOURCE)
        fn = module.get_function("make")
        calls = [i for i in all_instructions(fn) if isinstance(i, Call)]
        assert any(c.callee == "newobject" for c in calls)

    def test_unknown_field_rejected(self):
        bad = STRUCT_SOURCE + "\ndef bad(n: Node) -> int:\n    return n.nope\n"
        with pytest.raises(GoPyError):
            compile_source(bad)

    def test_circular_struct_allowed(self):
        module = compile_source(STRUCT_SOURCE)
        struct = module.types.get("Node")
        assert struct.field_type(1).pointee == struct


LIST_SOURCE = """
def head(xs: list[int]) -> int:
    return xs[0]

def total(xs: list[int]) -> int:
    out = 0
    for x in xs:
        out += x
    return out

def build(n: int) -> list[int]:
    out: list[int] = []
    i = 0
    while i < n:
        out.append(i)
        i += 1
    return out
"""


class TestLists:
    def test_index_has_bounds_panics(self):
        module = compile_source(LIST_SOURCE)
        fn = module.get_function("head")
        kinds = panic_kinds(fn)
        assert kinds.count("index-out-of-bounds") == 2  # negative and >= len
        assert "nil-dereference" in kinds

    def test_for_over_list(self):
        module = compile_source(LIST_SOURCE)
        validate_function(module.get_function("total"))

    def test_append_intrinsic(self):
        module = compile_source(LIST_SOURCE)
        fn = module.get_function("build")
        calls = [i for i in all_instructions(fn) if isinstance(i, Call)]
        assert any(c.callee == "list.new" for c in calls)
        assert any(c.callee == "list.append" for c in calls)

    def test_empty_list_needs_annotation(self):
        with pytest.raises(GoPyError):
            compile_source("def f() -> None:\n    xs = []\n")

    def test_list_literal(self):
        fn = compile_one("def f() -> list[int]:\n    return [1, 2, 3]\n")
        validate_function(fn)


class TestCallsAndConsts:
    def test_module_constants_inline(self):
        module = compile_source(
            "LIMIT = 10\n"
            "def f(a: int) -> bool:\n"
            "    return a < LIMIT\n"
        )
        validate_function(module.get_function("f"))

    def test_cross_function_call(self):
        module = compile_source(
            "def helper(a: int) -> int:\n"
            "    return a + 1\n"
            "def f(a: int) -> int:\n"
            "    return helper(helper(a))\n"
        )
        fn = module.get_function("f")
        calls = [i for i in all_instructions(fn) if isinstance(i, Call)]
        assert sum(1 for c in calls if c.callee == "helper") == 2

    def test_forward_reference_call(self):
        module = compile_source(
            "def f(a: int) -> int:\n"
            "    return later(a)\n"
            "def later(a: int) -> int:\n"
            "    return a\n"
        )
        validate_function(module.get_function("f"))

    def test_wrong_arity_rejected(self):
        with pytest.raises(GoPyError):
            compile_source(
                "def helper(a: int) -> int:\n"
                "    return a\n"
                "def f() -> int:\n"
                "    return helper()\n"
            )

    def test_unknown_function_rejected(self):
        with pytest.raises(GoPyError):
            compile_source("def f() -> int:\n    return nope(1)\n")


class TestSubsetRejections:
    @pytest.mark.parametrize(
        "source",
        [
            "def f(a: int) -> int:\n    return a / 2\n",  # division
            "def f(a: int) -> int:\n    return a % 2\n",  # modulo
            "def f() -> None:\n    x = 'hello'\n",  # strings
            "def f(a: int) -> bool:\n    return 0 < a < 10\n",  # chained cmp
            "def f(xs: list[int]) -> list[int]:\n    return xs[1:]\n",  # slicing
            "def f() -> None:\n    for k in {}:\n        pass\n",  # dicts
            "def f(a) -> int:\n    return a\n",  # missing annotation
            "def f() -> None:\n    x, y = 1, 2\n",  # tuple unpack
            "def f(a: int) -> None:\n    if a:\n        pass\n",  # int truthiness
            "def f() -> None:\n    raise ValueError()\n",  # exceptions
            "def f(xs: list[int]) -> None:\n    xs.pop()\n",  # other methods
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(GoPyError):
            compile_source(source)

    def test_type_mismatch_rejected(self):
        with pytest.raises(GoPyError):
            compile_source(
                "def f(a: int, b: bool) -> int:\n"
                "    x = a\n"
                "    x = b\n"
                "    return x\n"
            )


class TestPrinter:
    def test_printable(self):
        module = compile_source(STRUCT_SOURCE)
        text = print_module(module)
        assert "@get" in text and "panic" in text and "%Node" in text

    def test_function_text_contains_blocks(self):
        fn = compile_one("def f(a: int) -> int:\n    return a\n")
        text = print_function(fn)
        assert text.startswith("define Int @f")
        assert "ret" in text

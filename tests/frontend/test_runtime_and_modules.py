"""Tests for the GoStruct runtime and compilation of the real engine
modules (the production code path of the frontend)."""

import pytest

from repro.core.pipeline import _compiled, compile_engine_modules
from repro.engine.gopy import nameops, nodestack, rawname, respops, structs
from repro.engine.gopy.structs import NodeStack, Response, RR, TreeNode
from repro.frontend import GoPyError, compile_module, compile_source
from repro.frontend.runtime import GoStruct, is_gopy_struct, struct_fields
from repro.ir import print_module, validate_module
from repro.spec import toplevel


class TestGoStructRuntime:
    def test_zero_values(self):
        node = TreeNode()
        assert node.name == [] and node.left is None
        assert node.is_delegation is False and node.is_apex is False

    def test_fresh_lists_per_instance(self):
        a, b = Response(), Response()
        a.answer.append(1)
        assert b.answer == []

    def test_kwargs_override(self):
        rr = RR(rtype=5, rdata_id=9)
        assert rr.rtype == 5 and rr.rdata_id == 9 and rr.rname == []

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            RR(nope=1)

    def test_struct_fields_order(self):
        assert struct_fields(NodeStack) == ("nodes", "level")

    def test_is_gopy_struct(self):
        assert is_gopy_struct(TreeNode)
        assert not is_gopy_struct(GoStruct)
        assert not is_gopy_struct(int)

    def test_repr(self):
        stack = NodeStack(level=2)
        assert "level=2" in repr(stack)


class TestEngineModuleCompilation:
    @pytest.mark.parametrize("version", ["v1.0", "v2.0", "v3.0", "dev", "verified", "v4.0"])
    def test_all_versions_compile_and_validate(self, version):
        modules = compile_engine_modules(version)
        for module in modules:
            validate_module(module)
        names = {name for m in modules for name in m.function_names()}
        assert {"resolve", "find", "tree_search", "rrlookup"} <= names

    def test_shared_library_modules_compile(self):
        for module in (nameops, nodestack, rawname, respops):
            ir_module = _compiled(module)
            validate_module(ir_module)

    def test_toplevel_spec_compiles(self):
        base = [_compiled(nameops), _compiled(nodestack), _compiled(respops)]
        spec_ir = _compiled(toplevel, externs=base)
        assert spec_ir.has_function("rrlookup")
        assert spec_ir.has_function("spec_flatten_alias")

    def test_struct_registry_shared(self):
        modules = compile_engine_modules("verified")
        for name in ("TreeNode", "Response", "RR", "FlatZone", "NodeStack"):
            assert any(name in m.types for m in modules)

    def test_printer_on_real_module(self):
        text = print_module(_compiled(nameops))
        assert "@is_prefix" in text and "panic" in text

    def test_engine_loc_scale(self):
        # The paper's engine is ~2k LoC of Go; each of our versions is a
        # few hundred LoC of GoPy — same order once you account for Go's
        # braces/err-handling overhead. Pin the scale so refactors notice.
        import inspect

        from repro.engine.versions import verified

        loc = len(inspect.getsource(verified).splitlines())
        assert 300 < loc < 700


class TestDiagnostics:
    def test_error_carries_function_and_line(self):
        source = (
            "def good() -> int:\n"
            "    return 1\n"
            "def bad() -> int:\n"
            "    return 'text'\n"
        )
        with pytest.raises(GoPyError) as err:
            compile_source(source)
        assert "bad" in str(err.value)

    def test_void_call_as_value_rejected(self):
        source = (
            "def helper() -> None:\n"
            "    pass\n"
            "def f() -> int:\n"
            "    return helper()\n"
        )
        with pytest.raises(GoPyError):
            compile_source(source)

    def test_pointer_ordering_rejected(self):
        source = (
            "class S(GoStruct):\n"
            "    v: int\n"
            "def f(a: S, b: S) -> bool:\n"
            "    return a < b\n"
        )
        with pytest.raises(GoPyError):
            compile_source(source)

    def test_none_without_annotation_rejected(self):
        source = "def f() -> None:\n    x = None\n"
        with pytest.raises(GoPyError):
            compile_source(source)

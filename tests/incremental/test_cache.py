"""SummaryCache: content addressing, persistence, eviction, counters."""

import json
import os

from repro.incremental.cache import SummaryCache


class TestSummaryCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        key = {"zone": "abc", "depth": 5}
        assert cache.get("summary", key) is None
        cache.put("summary", key, {"cases": [1, 2, 3]})
        assert cache.get("summary", key) == {"cases": [1, 2, 3]}
        assert cache.stats() == {
            "hits": 1, "misses": 1, "puts": 1, "evictions": 0,
            "corrupt": 0, "io_errors": 0,
        }

    def test_key_material_differences_miss(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        cache.put("summary", {"zone": "abc"}, 1)
        assert cache.get("summary", {"zone": "abd"}) is None
        assert cache.get("summary", {"zone": "abc", "extra": 0}) is None
        # Kinds namespace independently.
        assert cache.get("refinement", {"zone": "abc"}) is None

    def test_persists_across_instances(self, tmp_path):
        SummaryCache(cache_dir=tmp_path).put("partition", {"k": 1}, {"bugs": []})
        fresh = SummaryCache(cache_dir=tmp_path)
        assert fresh.get("partition", {"k": 1}) == {"bugs": []}
        assert fresh.stats()["hits"] == 1

    def test_memory_only_leaves_disk_untouched(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path, memory_only=True)
        cache.put("summary", {"k": 1}, "v")
        assert cache.get("summary", {"k": 1}) == "v"
        assert list(tmp_path.iterdir()) == []
        assert SummaryCache(cache_dir=tmp_path).get("summary", {"k": 1}) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        address = cache.put("summary", {"k": 1}, "v")
        path = tmp_path / "summary" / f"{address}.json"
        path.write_text("{ not json")
        fresh = SummaryCache(cache_dir=tmp_path)
        assert fresh.get("summary", {"k": 1}) is None
        assert fresh.stats()["misses"] == 1
        # Corruption is counted and the poisoned file evicted, so the
        # next put republishes a clean entry.
        assert fresh.stats()["corrupt"] == 1
        assert not path.exists()
        fresh.put("summary", {"k": 1}, "v")
        assert SummaryCache(cache_dir=tmp_path).get("summary", {"k": 1}) == "v"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        address = cache.put("summary", {"k": 1}, {"cases": list(range(50))})
        path = tmp_path / "summary" / f"{address}.json"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write
        fresh = SummaryCache(cache_dir=tmp_path)
        assert fresh.get("summary", {"k": 1}) is None
        assert fresh.stats()["corrupt"] == 1
        assert not path.exists()

    def test_non_object_entry_is_corrupt(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        address = cache.put("summary", {"k": 1}, "v")
        path = tmp_path / "summary" / f"{address}.json"
        path.write_text("[1, 2, 3]")  # valid JSON, not an entry object
        fresh = SummaryCache(cache_dir=tmp_path)
        assert fresh.get("summary", {"k": 1}) is None
        assert fresh.stats()["corrupt"] == 1
        assert not path.exists()

    def test_collision_detected_by_stored_key(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        address = cache.put("summary", {"k": 1}, "v")
        path = tmp_path / "summary" / f"{address}.json"
        entry = json.loads(path.read_text())
        entry["key"] = {"k": 2}  # simulate an address collision
        path.write_text(json.dumps(entry))
        assert SummaryCache(cache_dir=tmp_path).get("summary", {"k": 1}) is None

    def test_lru_eviction(self, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path, max_entries=3)
        for i in range(5):
            address = cache.put("summary", {"k": i}, i)
            path = tmp_path / "summary" / f"{address}.json"
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            cache._evict(path.parent)
        files = list((tmp_path / "summary").glob("*.json"))
        assert len(files) == 3
        assert cache.evictions >= 2
        fresh = SummaryCache(cache_dir=tmp_path)
        assert fresh.get("summary", {"k": 0}) is None  # oldest evicted
        assert fresh.get("summary", {"k": 4}) == 4

    def test_address_is_stable(self, tmp_path):
        a = SummaryCache(cache_dir=tmp_path)
        b = SummaryCache(cache_dir=tmp_path)
        key = {"zone": "z", "universe": ["a", "b"], "depth": 7}
        assert a.address("partition", key) == b.address("partition", dict(reversed(list(key.items()))))

    def test_env_var_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = SummaryCache()
        cache.put("summary", {"k": 1}, "v")
        assert (tmp_path / "envcache" / "summary").exists()

"""CLI ``--json``/``--cache``/``watch`` plumbing and the IR-cache
staleness regression (the paper's edit-and-reverify porting workflow)."""

import json
import textwrap
import types

import pytest

from repro import cli
from repro.core.pipeline import _IR_CACHE, _compiled, clear_ir_cache

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
"""


@pytest.fixture()
def zone_file(tmp_path):
    path = tmp_path / "zone.db"
    path.write_text(ZONE_TEXT)
    return path


class TestVerifyJson:
    def test_json_output_contract(self, zone_file, capsys):
        rc = cli.main(["verify", "--zone", str(zone_file), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"] is True
        assert payload["zone_origin"] == "shop.example."
        assert payload["bugs"] == []
        assert {layer["name"] for layer in payload["layers"]} >= {"Resolve"}
        assert payload["solver_checks"] > 0

    def test_json_reports_bugs_and_cache_stats(self, zone_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        rc = cli.main([
            "verify", "--zone", str(zone_file), "--version", "v1.0",
            "--json", "--cache", str(cache_dir),
        ])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verified"] is False
        assert payload["bugs"] and payload["bug_categories"]
        assert payload["cache"]["puts"] > 0
        # Second run replays from the populated cache.
        rc = cli.main([
            "verify", "--zone", str(zone_file), "--version", "v1.0",
            "--json", "--cache", str(cache_dir),
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["solver_checks"] == 0
        assert payload["cache"]["hits"] > 0

    def test_watch_cli_max_updates(self, zone_file, capsys):
        rc = cli.main([
            "watch", "--zone", str(zone_file), "--interval", "0.01",
            "--max-updates", "1",
        ])
        assert rc == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        payload = json.loads(line)
        assert payload["reason"] == "initial"
        assert payload["verified"] is True


class TestIrCacheFreshness:
    """Editing a module's source must not serve stale IR (satellite fix:
    the cache is keyed by source digest, not module name alone)."""

    def _write_module(self, tmp_path, body):
        path = tmp_path / "porting_mod.py"
        path.write_text(textwrap.dedent(body))
        module = types.ModuleType("porting_mod")
        module.__file__ = str(path)
        with open(path) as handle:
            exec(compile(handle.read(), str(path), "exec"), module.__dict__)
        return module

    def test_recompiles_after_source_edit(self, tmp_path):
        module = self._write_module(
            tmp_path,
            """
            def answer(x: int) -> int:
                return x + 1
            """,
        )
        first = _compiled(module)
        assert _compiled(module) is first  # unchanged source: cached

        (tmp_path / "porting_mod.py").write_text(
            textwrap.dedent(
                """
                def answer(x: int) -> int:
                    return x + 2
                """
            )
        )
        second = _compiled(module)
        assert second is not first  # digest changed: fresh IR

    def test_clear_ir_cache(self, tmp_path):
        module = self._write_module(
            tmp_path,
            """
            def answer(x: int) -> int:
                return x * 2
            """,
        )
        first = _compiled(module)
        clear_ir_cache()
        assert not _IR_CACHE
        assert _compiled(module) is not first

    def test_engine_modules_still_cached_by_content(self):
        from repro.core.pipeline import compile_engine_modules

        a = compile_engine_modules("verified")
        b = compile_engine_modules("verified")
        assert [m.name for m in a] == [m.name for m in b]
        assert all(x is y for x, y in zip(a, b))  # same sources: same IR

"""ZoneDelta semantics and the documented invalidation rules."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.name import DnsName
from repro.dns.rdata import ARdata, TXTRdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import ZoneValidationError
from repro.dns.zonefile import parse_zone_text
from repro.incremental.delta import (
    RecordChange,
    ZoneDelta,
    affected_partitions,
    delta_impact,
    diff_zones,
    partition_of_name,
    random_delta,
    zone_partitions,
)

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
www IN TXT "storefront"
*.tenants IN A 192.0.2.90
sub IN NS ns1.sub
ns1.sub IN A 192.0.2.53
"""


@pytest.fixture()
def zone():
    return parse_zone_text(ZONE_TEXT)


def name(text):
    return DnsName(tuple(text.rstrip(".").split(".")))


def add(rname, rtype=RRType.A, rdata=None):
    rdata = rdata if rdata is not None else ARdata("192.0.2.200")
    return RecordChange("add", ResourceRecord(rname, rtype, rdata))


class TestZoneDelta:
    def test_apply_add_delete_roundtrip(self, zone):
        rec = ResourceRecord(name("new.www.shop.example"), RRType.A, ARdata("192.0.2.7"))
        added = ZoneDelta(zone.origin, (RecordChange("add", rec),)).apply(zone)
        assert rec in added.records
        removed = ZoneDelta(zone.origin, (RecordChange("delete", rec),)).apply(added)
        assert sorted(r.to_text() for r in removed.records) == sorted(
            r.to_text() for r in zone.records
        )

    def test_apply_rejects_missing_delete(self, zone):
        rec = ResourceRecord(name("ghost.shop.example"), RRType.A, ARdata("192.0.2.9"))
        with pytest.raises(ZoneValidationError):
            ZoneDelta(zone.origin, (RecordChange("delete", rec),)).apply(zone)

    def test_apply_rejects_duplicate_add(self, zone):
        rec = zone.records[2]
        with pytest.raises(ZoneValidationError):
            ZoneDelta(zone.origin, (RecordChange("add", rec),)).apply(zone)

    def test_apply_rejects_wrong_origin(self, zone):
        delta = ZoneDelta(name("other.example"), ())
        with pytest.raises(ZoneValidationError):
            delta.apply(zone)

    def test_diff_zones_inverts_apply(self, zone):
        rng = random.Random(11)
        for _ in range(20):
            delta = random_delta(zone, rng, ops=2)
            new = delta.apply(zone)
            rediff = diff_zones(zone, new)
            assert sorted(r.to_text() for r in rediff.apply(zone).records) == sorted(
                r.to_text() for r in new.records
            )

    def test_describe_mentions_every_change(self, zone):
        rec = ResourceRecord(name("x.shop.example"), RRType.A, ARdata("192.0.2.4"))
        delta = ZoneDelta(
            zone.origin,
            (RecordChange("add", rec), RecordChange("delete", zone.records[2])),
        )
        text = delta.describe()
        assert "2 change(s)" in text and "+ x.shop.example." in text


class TestPartitions:
    def test_partition_keys(self, zone):
        keys = [p.key for p in zone_partitions(zone)]
        assert keys == [
            "apex", "outside", "miss", "sub:ns1", "sub:sub", "sub:tenants", "sub:www",
        ]

    def test_wildcard_label_has_no_sub_partition(self, zone):
        assert "sub:*" not in [p.key for p in zone_partitions(zone)]

    def test_partition_of_name(self, zone):
        assert partition_of_name(zone, zone.origin) == "apex"
        assert partition_of_name(zone, name("www.shop.example")) == "sub:www"
        assert partition_of_name(zone, name("deep.www.shop.example")) == "sub:www"
        assert partition_of_name(zone, name("nope.shop.example")) == "miss"
        assert partition_of_name(zone, name("a.tenants.shop.example")) == "sub:tenants"
        assert partition_of_name(zone, name("other.example")) == "outside"


class TestInvalidation:
    """Each delta invalidates exactly the documented subtree set."""

    def test_plain_update_invalidates_only_its_subtree(self, zone):
        new = ZoneDelta(zone.origin, (add(name("extra.www.shop.example")),)).apply(zone)
        assert affected_partitions(zone, new) == ["sub:www"]

    def test_delete_under_wildcard_invalidates_wildcard_subtree(self, zone):
        # *.tenants covers the whole tenants slice: deleting the wildcard
        # invalidates sub:tenants as a unit (not just the wildcard node).
        base = ZoneDelta(
            zone.origin, (add(name("static.tenants.shop.example")),)
        ).apply(zone)
        wc = next(r for r in base.records if "*" in r.rname.labels)
        new = ZoneDelta(base.origin, (RecordChange("delete", wc),)).apply(base)
        assert affected_partitions(base, new) == ["sub:tenants"]

    def test_delete_last_record_of_subtree_moves_space_to_miss(self, zone):
        # Deleting the only record under a top label removes the partition
        # itself; its query space falls back into the NXDOMAIN partition.
        wc = next(r for r in zone.records if "*" in r.rname.labels)
        new = ZoneDelta(zone.origin, (RecordChange("delete", wc),)).apply(zone)
        assert affected_partitions(zone, new) == ["miss"]
        assert "sub:tenants" not in [p.key for p in zone_partitions(new)]

    def test_delete_under_delegation_invalidates_delegated_subtree(self, zone):
        # Removing the cut's NS record changes referral behaviour for the
        # whole delegated subtree, not just the cut node.
        ns = next(r for r in zone.records if r.rname == name("sub.shop.example"))
        new = ZoneDelta(zone.origin, (RecordChange("delete", ns),)).apply(zone)
        assert affected_partitions(zone, new) == ["sub:sub"]

    def test_apex_change_invalidates_everything(self, zone):
        new = ZoneDelta(
            zone.origin, (add(zone.origin, RRType.TXT, TXTRdata("hello")),)
        ).apply(zone)
        affected = set(affected_partitions(zone, new))
        assert affected == {p.key for p in zone_partitions(zone)}

    def test_new_top_label_invalidates_miss_space(self, zone):
        new = ZoneDelta(zone.origin, (add(name("fresh.shop.example")),)).apply(zone)
        affected = affected_partitions(zone, new)
        # The new child gets its own partition and the NXDOMAIN boundary moves.
        assert "sub:fresh" in affected and "miss" in affected

    def test_rdata_chase_invalidates_dependents(self, zone):
        # Apex NS targets ns1: a change in ns1's subtree invalidates every
        # partition whose closure chases the apex NS glue.
        new = ZoneDelta(zone.origin, (add(name("x.ns1.shop.example")),)).apply(zone)
        affected = affected_partitions(zone, new)
        assert "sub:ns1" in affected and "apex" in affected

    def test_cname_target_chase(self):
        zone = parse_zone_text(
            """\
$ORIGIN z.example.
@ IN SOA ns.z.example. admin.z.example. 1 3600 600 86400 300
@ IN NS ns
ns IN A 192.0.2.1
alias IN CNAME target.z.example.
target IN A 192.0.2.2
"""
        )
        rec = next(r for r in zone.records if r.rname == name("target.z.example"))
        replacement = ResourceRecord(rec.rname, rec.rtype, ARdata("192.0.2.3"), rec.ttl)
        new = ZoneDelta(
            zone.origin,
            (RecordChange("delete", rec), RecordChange("add", replacement)),
        ).apply(zone)
        assert "sub:alias" in affected_partitions(zone, new)

    def test_chase_pins_absent_targets(self):
        # alias points at a nonexistent subtree; *adding* the target later
        # must invalidate alias's partition even though no shared record
        # existed before.
        base = parse_zone_text(
            """\
$ORIGIN z.example.
@ IN SOA ns.z.example. admin.z.example. 1 3600 600 86400 300
@ IN NS ns
ns IN A 192.0.2.1
alias IN CNAME missing.z.example.
"""
        )
        new = ZoneDelta(base.origin, (add(name("missing.z.example")),)).apply(base)
        assert "sub:alias" in affected_partitions(base, new)

    def test_delta_impact_layers(self, zone):
        # Pure rdata churn keeps the tree shape: TreeSearch survives.
        rec = next(r for r in zone.records if r.rtype is RRType.TXT)
        replacement = ResourceRecord(rec.rname, rec.rtype, TXTRdata("other"), rec.ttl)
        new = ZoneDelta(
            zone.origin,
            (RecordChange("delete", rec), RecordChange("add", replacement)),
        ).apply(zone)
        impact = delta_impact(zone, new)
        assert impact.affected_layers == ("Find",)
        assert impact.affected_partitions == ("sub:www",)
        # Adding a new owner name changes the shape: both layers invalidated.
        new2 = ZoneDelta(zone.origin, (add(name("n.www.shop.example")),)).apply(zone)
        assert delta_impact(zone, new2).affected_layers == ("TreeSearch", "Find")

    def test_no_change_no_invalidation(self, zone):
        assert affected_partitions(zone, zone) == []
        impact = delta_impact(zone, zone)
        assert impact.affected_partitions == ()
        assert impact.affected_layers == ()
        assert set(impact.reusable_partitions) == {
            p.key for p in zone_partitions(zone)
        }


class TestDeltaAlgebra:
    """Hypothesis-driven delta algebra over generated record edits."""

    labels = st.sampled_from(["www", "ns1", "tenants", "alpha", "beta", "deep"])

    @given(
        st.lists(
            st.tuples(labels, st.integers(min_value=1, max_value=250)),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_diff_apply_roundtrip(self, zone_spec):
        base = parse_zone_text(ZONE_TEXT)
        records = list(base.records)
        for label, octet in zone_spec:
            rec = ResourceRecord(
                base.origin.prepend(label).prepend(f"h{octet}"),
                RRType.A,
                ARdata(f"192.0.2.{octet}"),
            )
            if rec not in records:
                records.append(rec)
        new = type(base)(base.origin, tuple(records))
        delta = diff_zones(base, new)
        assert sorted(r.to_text() for r in delta.apply(base).records) == sorted(
            r.to_text() for r in new.records
        )
        # Every changed owner maps into an affected partition.
        impact = delta_impact(base, new)
        for change in delta:
            key = partition_of_name(new, change.record.rname)
            assert key in impact.affected_partitions

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_delta_preserves_validity(self, seed):
        base = parse_zone_text(ZONE_TEXT)
        rng = random.Random(seed)
        delta = random_delta(base, rng, ops=3)
        new = delta.apply(base)  # Zone() revalidates; no exception
        assert new.origin == base.origin

"""IncrementalVerifier behaviour: reuse accounting, persistence, the
acceptance speedup bar, and session-level summary/refinement caching."""

import pytest

from repro.core.pipeline import VerificationSession, verify_engine
from repro.dns.rdata import ARdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zonefile import parse_zone_text
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import RecordChange, ZoneDelta
from repro.incremental.engine import IncrementalVerifier

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
www IN TXT "storefront"
*.tenants IN A 192.0.2.90
"""


@pytest.fixture()
def zone():
    return parse_zone_text(ZONE_TEXT)


def www_rdata_update(zone, address="192.0.2.99"):
    """A single-record rdata update under ``www`` (universe-preserving)."""
    rec = next(
        r for r in zone.records
        if r.rtype is RRType.A and r.rname.labels[0] == "www"
    )
    return ZoneDelta(
        zone.origin,
        (
            RecordChange("delete", rec),
            RecordChange("add", ResourceRecord(rec.rname, rec.rtype, ARdata(address), rec.ttl)),
        ),
    )


class TestAcceptanceSpeedup:
    def test_single_record_delta_is_5x_cheaper(self, zone):
        """ISSUE acceptance bar: ≥5× fewer solver checks than from-scratch
        after a single-record delta on the pinned shop.example. zone."""
        verifier = IncrementalVerifier(zone, "verified")
        verifier.verify_current()
        outcome = verifier.apply(www_rdata_update(zone))
        scratch = verify_engine(verifier.zone, "verified")
        assert scratch.solver_checks >= 5 * outcome.result.solver_checks
        assert outcome.reuse.partitions_recomputed == 1
        assert outcome.reuse.recomputed_keys == ("sub:www",)


class TestReuseAccounting:
    def test_cold_run_recomputes_everything(self, zone):
        outcome = IncrementalVerifier(zone, "verified").verify_current()
        reuse = outcome.reuse
        assert reuse.partitions_reused == 0
        assert reuse.partitions_total == reuse.partitions_recomputed == 6
        assert reuse.fresh_checks == outcome.result.solver_checks > 0
        assert reuse.reused_checks == 0

    def test_identical_rerun_replays_everything(self, zone):
        verifier = IncrementalVerifier(zone, "verified")
        first = verifier.verify_current()
        second = verifier.verify_current()
        assert second.reuse.partitions_reused == second.reuse.partitions_total
        assert second.result.solver_checks == 0
        assert second.reuse.reused_checks == first.result.solver_checks
        assert second.result.verified == first.result.verified

    def test_delta_reuse_statistics(self, zone):
        verifier = IncrementalVerifier(zone, "verified")
        verifier.verify_current()
        outcome = verifier.apply(www_rdata_update(zone))
        assert outcome.reuse.records_changed == 2  # delete + add
        assert set(outcome.reuse.reused_keys) == {
            "apex", "outside", "miss", "sub:ns1", "sub:tenants",
        }
        assert outcome.result.cache_stats is None  # merged result, engine stats live in reuse
        assert outcome.reuse.cache["hits"] > 0

    def test_persistent_cache_survives_processes(self, zone, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        IncrementalVerifier(zone, "verified", cache=cache).verify_current()
        fresh_cache = SummaryCache(cache_dir=tmp_path)
        outcome = IncrementalVerifier(zone, "verified", cache=fresh_cache).verify_current()
        assert outcome.reuse.partitions_reused == outcome.reuse.partitions_total
        assert outcome.result.solver_checks == 0

    def test_buggy_version_replays_bug_reports(self, zone):
        verifier = IncrementalVerifier(zone, "v1.0")
        first = verifier.verify_current()
        assert first.result.bugs
        second = verifier.verify_current()
        assert second.result.solver_checks == 0
        assert [b.description for b in second.result.bugs] == [
            b.description for b in first.result.bugs
        ]


class TestSessionCache:
    def test_summary_and_refinement_cache_hit(self, zone, tmp_path):
        cache = SummaryCache(cache_dir=tmp_path)
        first = VerificationSession(zone, "verified", cache=cache).verify()
        assert first.cache_stats is not None
        second = VerificationSession(zone, "verified", cache=SummaryCache(cache_dir=tmp_path)).verify()
        assert second.solver_checks == 0
        assert [l.route for l in second.layers] == ["cache"]
        assert second.verified == first.verified

    def test_summary_cache_alone(self, zone, tmp_path):
        """Evicting the refinement entry still leaves summary reuse."""
        cache = SummaryCache(cache_dir=tmp_path)
        VerificationSession(zone, "verified", cache=cache).verify()
        for path in (tmp_path / "refinement").glob("*.json"):
            path.unlink()
        result = VerificationSession(
            zone, "verified", cache=SummaryCache(cache_dir=tmp_path)
        ).verify()
        routes = {l.name: l.route for l in result.layers}
        assert routes["TreeSearch"] == "cache"
        assert routes["Find"] == "cache"
        assert routes["Resolve"] == "toplevel"
        assert result.verified

    def test_restrict_narrows_the_proof(self, zone):
        from repro.incremental.delta import Partition

        session = VerificationSession(zone, "verified")
        session.restrict(Partition("sub:www").preconditions(session.query_encoding))
        restricted = session.verify()
        full = verify_engine(zone, "verified")
        assert restricted.verified
        assert 0 < restricted.solver_checks < full.solver_checks

"""The incremental correctness bar: incremental results must be
bit-identical to from-scratch verification.

The randomized corpus applies ≥50 seeded delta sequences (drawn with
``random_delta`` over small zones, plus ``repro.zonegen`` snapshots) and
cross-checks :class:`IncrementalVerifier` against a fresh monolithic
session after every step, comparing the *exact* decoded bug tuples —
including the raw interner codes of every counterexample query.
"""

import random

import pytest

from repro.core.pipeline import verify_engine
from repro.dns.zonefile import parse_zone_text
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import diff_zones, random_delta
from repro.incremental.engine import IncrementalVerifier
from repro.zonegen import GeneratorConfig, ZoneGenerator

BASE_ZONE = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
www IN TXT "storefront"
*.tenants IN A 192.0.2.90
"""


def bug_tuples(result):
    return sorted(
        (
            bug.version,
            bug.categories,
            bug.qname_codes,
            bug.qtype_code,
            bug.description,
            bug.validated,
            None if bug.query is None else bug.query.to_text(),
        )
        for bug in result.bugs
    )


def assert_equivalent(outcome, scratch):
    assert outcome.result.verified == scratch.verified
    assert bug_tuples(outcome.result) == bug_tuples(scratch)
    assert outcome.result.spurious_mismatches == scratch.spurious_mismatches


class TestPartitionedEqualsMonolithic:
    """Cold-cache partitioned runs already match the monolithic session."""

    @pytest.mark.parametrize("version", ["verified", "v1.0"])
    def test_cold_run_matches_scratch(self, version):
        zone = parse_zone_text(BASE_ZONE)
        outcome = IncrementalVerifier(zone, version).verify_current()
        assert_equivalent(outcome, verify_engine(zone, version))


class TestRandomizedDeltaSequences:
    """≥50 seeded delta sequences, incremental vs scratch after each."""

    @pytest.mark.parametrize(
        "version,seeds",
        [
            ("verified", list(range(0, 30))),
            ("v1.0", list(range(100, 120))),
        ],
    )
    def test_sequences(self, version, seeds):
        cache = SummaryCache(memory_only=True)
        checked = 0
        for seed in seeds:
            rng = random.Random(seed)
            zone = parse_zone_text(BASE_ZONE)
            verifier = IncrementalVerifier(zone, version, cache=cache)
            verifier.verify_current()  # warm the shared cache on the base zone
            steps = 1 + (seed % 2)
            for _ in range(steps):
                delta = random_delta(verifier.zone, rng, ops=1)
                if delta.is_empty:
                    continue
                outcome = verifier.apply(delta)
                scratch = verify_engine(verifier.zone, version)
                assert_equivalent(outcome, scratch)
                checked += 1
        assert checked >= len(seeds), "each sequence must contribute a check"

    def test_reuse_actually_happens(self):
        """The corpus is not vacuous: rdata-only deltas replay partitions."""
        zone = parse_zone_text(BASE_ZONE)
        verifier = IncrementalVerifier(zone, "verified")
        verifier.verify_current()
        rng = random.Random(7)
        reused_total = 0
        for _ in range(6):
            delta = random_delta(verifier.zone, rng, ops=1)
            if delta.is_empty:
                continue
            outcome = verifier.apply(delta)
            reused_total += outcome.reuse.partitions_reused
        assert reused_total > 0


class TestGeneratedZones:
    """zonegen snapshots: diff-driven adoption matches scratch."""

    def test_zonegen_snapshot_stream(self):
        config = GeneratorConfig(
            seed=77, num_hosts=3, num_wildcards=1, num_delegations=1,
            num_cnames=1, num_mx=0, num_srv=0,
        )
        zones = list(ZoneGenerator(config).stream(3))
        first = zones[0]
        verifier = IncrementalVerifier(first, "verified")
        outcome = verifier.verify_current()
        assert_equivalent(outcome, verify_engine(first, "verified"))
        # Morph the snapshot with a random delta and re-check.
        rng = random.Random(3)
        delta = random_delta(verifier.zone, rng, ops=2)
        if not delta.is_empty:
            outcome = verifier.apply(delta)
            assert_equivalent(outcome, verify_engine(verifier.zone, "verified"))

    def test_diff_to_adopts_new_snapshot(self):
        zone = parse_zone_text(BASE_ZONE)
        new = random_delta(zone, random.Random(5), ops=2).apply(zone)
        verifier = IncrementalVerifier(zone, "verified")
        verifier.verify_current()
        outcome = verifier.diff_to(new)
        assert outcome.reuse.records_changed == len(diff_zones(zone, new))
        assert_equivalent(outcome, verify_engine(new, "verified"))

"""Bit-identity of the equivalence-class planner against the by-label oracle.

The by-label planner is the reference: one restricted symbolic run per
below-apex subtree, every unit against the full zone. The EC planner must
reproduce its *verdicts and bug locations* — same overall verdict, same
set of (version, categories, validated, covering-partition) bug tuples —
while issuing strictly fewer solver checks. Witness queries may differ
(EC verifies projected zones, so models pick among projected labels), so
the comparison key is location-based, exactly what the acceptance bar
demands.

The default run keeps a small corpus (seeded zones × engine versions plus
a short delta sequence). Setting ``EC_MARATHON=1`` — the ec-smoke CI job
does — extends the delta sequence to 50 steps.
"""

import os
import random

import pytest

from repro.incremental.delta import random_delta
from repro.incremental.engine import IncrementalVerifier
from repro.incremental.planner.by_label import ByLabelPlanner
from repro.zonegen import corpus, generate_zone, tld_zone

MARATHON = os.environ.get("EC_MARATHON") == "1"

_oracle = ByLabelPlanner()


def location_tuples(result, zone):
    """The planner-independent bug signature: what bug, where."""
    out = set()
    for bug in result.bugs:
        location = (
            _oracle.unit_of_name(zone, bug.query.qname)
            if bug.query is not None else None
        )
        out.add(
            (bug.version, tuple(sorted(bug.categories)), bug.validated,
             location)
        )
    return sorted(out)


def run_both(zone, version):
    results = {}
    for planner in ("by-label", "equivalence-class"):
        outcome = IncrementalVerifier(zone, version, planner=planner)
        results[planner] = outcome.verify_current().result
    return results


def assert_equivalent(zone, version, results):
    by_label = results["by-label"]
    ec = results["equivalence-class"]
    assert ec.verdict == by_label.verdict, version
    assert location_tuples(ec, zone) == location_tuples(by_label, zone)


@pytest.mark.parametrize("version", ["v2.0", "v3.0"])
def test_ec_matches_oracle_on_generated_zone(version):
    zone = generate_zone(seed=11)
    results = run_both(zone, version)
    assert_equivalent(zone, version, results)
    assert results["equivalence-class"].solver_checks < \
        results["by-label"].solver_checks


def test_ec_matches_oracle_on_wildcard_synthesis_bug():
    """Regression for the projection blind spot: v3.0 wrongly synthesizes
    the apex wildcard at empty non-terminals, so sub-unit projections must
    carry the wildcard slice or the bug vanishes (and phantom NXDOMAINs
    appear). gen3 has the triggering shape: an apex wildcard plus
    multi-level subtrees whose intermediate names are empty."""
    zone = generate_zone(seed=3)
    results = run_both(zone, "v3.0")
    assert_equivalent(zone, "v3.0", results)


def test_ec_matches_oracle_on_evaluation_zone():
    zone = corpus.evaluation_zone()
    results = run_both(zone, "dev")
    assert_equivalent(zone, "dev", results)


def test_ec_collapses_tld_zone_and_agrees():
    """Calibration at a size where the by-label oracle is still affordable:
    a TLD-shaped zone collapses to a bounded unit count and both planners
    agree, with the EC side issuing far fewer solver checks."""
    zone = tld_zone(64, seed=5)
    by_label_units = len(_oracle.plan(zone))
    from repro.incremental.planner.ec import ECPlanner

    ec_units = len(ECPlanner().plan(zone))
    assert ec_units < by_label_units / 2
    results = run_both(zone, "verified")
    assert_equivalent(zone, "verified", results)
    assert results["equivalence-class"].solver_checks < \
        results["by-label"].solver_checks / 2


def test_delta_sequence_stays_equivalent():
    """Both planners track the same evolving zone; every step's merged
    result must agree. 50 steps under EC_MARATHON (the ec-smoke job),
    a short sequence otherwise."""
    steps = 50 if MARATHON else 4
    zone = generate_zone(seed=5)
    verifiers = {
        planner: IncrementalVerifier(zone, "v2.0", planner=planner)
        for planner in ("by-label", "equivalence-class")
    }
    for verifier in verifiers.values():
        verifier.verify_current()
    rng = random.Random(1234)
    current = zone
    for step in range(steps):
        delta = random_delta(current, rng, ops=2)
        if not delta.changes:
            continue
        new_zone = delta.apply(current)
        outcomes = {
            planner: verifier.diff_to(new_zone)
            for planner, verifier in verifiers.items()
        }
        by_label = outcomes["by-label"].result
        ec = outcomes["equivalence-class"].result
        assert ec.verdict == by_label.verdict, f"step {step}"
        assert location_tuples(ec, new_zone) == \
            location_tuples(by_label, new_zone), f"step {step}"
        current = new_zone

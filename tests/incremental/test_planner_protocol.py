"""Planner-protocol conformance: every QueryPlanner must satisfy these.

The contract under test (see ``repro.incremental.planner.protocol``):

- ``plan`` is deterministic and its unit ids are unique;
- ``unit_of_name`` is total over concrete names and maps every name into
  a planned unit (coverage: the plan partitions the query space);
- ``affected`` returns at least every unit whose digest changed under a
  delta (no stale cached verdict can survive);
- ``unit_digest`` is stable on unchanged zones and sensitive to content;
- the deprecated module-level helpers still work, warn exactly once per
  process, and agree with ``ByLabelPlanner``;
- the planner choice threads through ``VerifyOptions`` (field, JSON wire
  format, ``from_args``) and the CLI's shared ``--planner`` flag.
"""

import random
import warnings

import pytest

from repro.core.encoding import QueryEncoding
from repro.core.options import VerifyOptions
from repro.dns.name import DnsName
from repro.engine.encoding import ZoneEncoder
from repro.incremental import delta as delta_mod
from repro.incremental.delta import Partition, diff_zones, random_delta
from repro.incremental.planner.by_label import ByLabelPlanner
from repro.incremental.planner.ec import ECPlanner
from repro.incremental.planner.protocol import (
    BY_LABEL,
    EQUIVALENCE_CLASS,
    PlanUnit,
    QueryPlanner,
    make_planner,
    unit_preconditions,
)
from repro.zonegen import generate_zone

PLANNER_FACTORIES = [ByLabelPlanner, ECPlanner]


def _zone(seed=3):
    return generate_zone(seed=seed)


def _digest(planner, zone, unit):
    """Effective unit digest: the eager one when the planner computes it
    at plan time (EC), else the protocol's on-demand ``unit_digest``
    (by-label, whose engine keys on partition-closure digests)."""
    return unit.digest or planner.unit_digest(zone, unit)


# ---------------------------------------------------------------------------
# plan()


@pytest.mark.parametrize("factory", PLANNER_FACTORIES)
def test_plan_is_deterministic(factory):
    zone = _zone()
    first = factory().plan(zone)
    second = factory().plan(zone)
    assert [(u.id, u.digest, u.members) for u in first] == [
        (u.id, u.digest, u.members) for u in second
    ]
    assert len({u.id for u in first}) == len(first)


@pytest.mark.parametrize("factory", PLANNER_FACTORIES)
def test_plan_units_carry_digests(factory):
    planner = factory()
    zone = _zone()
    for unit in planner.plan(zone):
        assert _digest(planner, zone, unit), unit.id
        if unit.digest:
            assert planner.unit_digest(zone, unit) == unit.digest


# ---------------------------------------------------------------------------
# unit_of_name() coverage


@pytest.mark.parametrize("factory", PLANNER_FACTORIES)
def test_every_name_maps_into_the_plan(factory):
    planner = factory()
    zone = _zone()
    ids = {u.id for u in planner.plan(zone)}
    probes = [rec.rname for rec in zone.records]
    probes += [
        zone.origin,
        DnsName(("nope",)).concat(zone.origin),       # miss
        DnsName(("*",)).concat(zone.origin),          # literal star
        DnsName.from_text("www.elsewhere.org."),      # out of bailiwick
    ]
    for name in probes:
        unit_id = planner.unit_of_name(zone, name)
        assert unit_id in ids, name.to_text()


def test_planners_agree_on_membership_semantics():
    """Both planners put a name in a unit covering the same query space
    kind: apex->apex, outside->outside, missing->miss/gap, sub->sub."""
    zone = _zone()
    by_label = ByLabelPlanner()
    ec = ECPlanner()
    cases = [
        (zone.origin, "apex", "ec:apex"),
        (DnsName.from_text("www.elsewhere.org."), "outside", "ec:outside"),
        (DnsName(("nope",)).concat(zone.origin), "miss", "ec:miss"),
    ]
    for name, bl_expected, ec_expected in cases:
        assert by_label.unit_of_name(zone, name) == bl_expected
        assert ec.unit_of_name(zone, name) == ec_expected


# ---------------------------------------------------------------------------
# affected() ⊇ digest changes


@pytest.mark.parametrize("factory", PLANNER_FACTORIES)
def test_affected_covers_every_digest_change(factory):
    rng = random.Random(7)
    zone = _zone()
    for _ in range(6):
        planner = factory()
        before = {
            u.id: _digest(planner, zone, u) for u in planner.plan(zone)
        }
        delta = random_delta(zone, rng, ops=2)
        if not delta.changes:
            continue
        new_zone = delta.apply(zone)
        affected = set(planner.affected(delta))
        fresh = factory()
        after = {
            u.id: _digest(fresh, new_zone, u) for u in fresh.plan(new_zone)
        }
        changed = {
            uid for uid in set(before) | set(after)
            if before.get(uid) != after.get(uid)
        }
        assert changed <= affected, (changed - affected, affected)
        zone = new_zone


@pytest.mark.parametrize("factory", PLANNER_FACTORIES)
def test_digest_stable_without_changes_and_sensitive_with(factory):
    zone = _zone()
    planner = factory()
    digests = {
        u.id: _digest(planner, zone, u) for u in planner.plan(zone)
    }
    # Stability: a rebuilt planner over an equal zone yields equal digests.
    rebuilt = factory()
    assert digests == {
        u.id: _digest(rebuilt, zone, u) for u in rebuilt.plan(zone)
    }
    # Sensitivity: mutate one subtree; some covering digest changes.
    rng = random.Random(11)
    delta = random_delta(zone, rng, ops=1)
    while not delta.changes:
        delta = random_delta(zone, rng, ops=1)
    new_zone = delta.apply(zone)
    fresh = factory()
    assert digests != {
        u.id: _digest(fresh, new_zone, u) for u in fresh.plan(new_zone)
    }


# ---------------------------------------------------------------------------
# label-graph delta semantics


def test_label_graph_payload_churn_keeps_environments():
    """Payload-only deltas dirty consumers (their observable content
    changed) but must not rewire anyone's environment — chase edges
    depend on rdata-embedded names, not payload bytes."""
    from repro.dns.rdata import ARdata
    from repro.dns.records import ResourceRecord
    from repro.dns.rtypes import RRType
    from repro.incremental.delta import RecordChange, ZoneDelta
    from repro.incremental.planner.label_graph import LabelGraph

    zone = _zone(seed=3)  # gen3: env(a)={eu,web}, env(eu)={web}
    graph = LabelGraph.build(zone)
    envs_before = {t: graph.env_of(t) for t in graph.tops}
    # us.web A payload churn: web is consumed (transitively) by a and eu.
    rec = next(r for r in zone.records
               if r.rtype is RRType.A and r.rname.labels[1:2] == ("web",))
    delta = ZoneDelta(zone.origin, (
        RecordChange("delete", rec),
        RecordChange("add", ResourceRecord(
            rec.rname, rec.rtype, ARdata("203.0.113.9"), rec.ttl)),
    ))
    dirty, apex_changed = graph.advance(delta)
    assert not apex_changed
    assert dirty == {"web", "a", "eu"}
    assert {t: graph.env_of(t) for t in graph.tops} == envs_before


def test_label_graph_retarget_rewires_environment():
    """A CNAME retarget is a structural edge change: the owning top's
    environment must follow the new target."""
    from repro.dns.rtypes import RRType
    from repro.incremental.delta import RecordChange, ZoneDelta
    from repro.incremental.planner.label_graph import LabelGraph
    from repro.dns.rdata import CNAMERdata
    from repro.dns.records import ResourceRecord

    zone = _zone(seed=3)
    graph = LabelGraph.build(zone)
    assert graph.env_of("a") == frozenset({"eu", "web"})
    rec = next(r for r in zone.records if r.rtype is RRType.CNAME)
    retargeted = ResourceRecord(
        rec.rname, rec.rtype,
        CNAMERdata(DnsName(("mail",)).concat(zone.origin)), rec.ttl)
    delta = ZoneDelta(zone.origin, (
        RecordChange("delete", rec),
        RecordChange("add", retargeted),
    ))
    dirty, _ = graph.advance(delta)
    assert "a" in dirty
    assert graph.env_of("a") == frozenset({"mail"})


# ---------------------------------------------------------------------------
# deprecated module-level helpers


def test_partition_helpers_warn_once_and_delegate():
    zone = _zone()
    delta_mod._partition_helpers_warned = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        parts = delta_mod.zone_partitions(zone)
        delta_mod.partition_of_name(zone, zone.origin)
        delta_mod.partition_closure(zone, "apex")
        delta_mod.affected_partitions(zone, zone)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1  # one warning per process, not per call
    assert [p.key for p in parts] == [
        u.part_key for u in ByLabelPlanner().plan(zone)
    ]
    assert delta_mod.partition_of_name(zone, zone.origin) == "apex"
    assert delta_mod.affected_partitions(zone, zone) == []


# ---------------------------------------------------------------------------
# unit_preconditions


def test_unit_preconditions_full_is_unrestricted():
    assert unit_preconditions("full", None, encoding=None) == []


def test_unit_preconditions_partition_keys_match_partition():
    zone = _zone()
    encoding = QueryEncoding(ZoneEncoder(zone))
    for key in ("apex", "miss", "outside", "sub:mail"):
        ours = unit_preconditions(key, None, encoding)
        legacy = Partition(key).preconditions(encoding)
        assert [repr(c) for c in ours] == [repr(c) for c in legacy]


def test_unit_preconditions_gap_requires_code():
    zone = _zone()
    encoding = QueryEncoding(ZoneEncoder(zone))
    with pytest.raises(ValueError):
        unit_preconditions("gap", None, encoding)
    pinned = unit_preconditions("gap", 3 * 65536 + 32768, encoding)
    star = unit_preconditions("star", None, encoding)
    assert pinned and star
    # Both confine the first below-apex label to one concrete code.
    assert len(pinned) == len(star)


# ---------------------------------------------------------------------------
# options / factory / CLI threading


def test_make_planner_resolution():
    assert isinstance(make_planner(None), ByLabelPlanner)
    assert isinstance(make_planner(BY_LABEL), ByLabelPlanner)
    assert isinstance(make_planner(EQUIVALENCE_CLASS), ECPlanner)
    instance = ECPlanner()
    assert make_planner(instance) is instance
    with pytest.raises(ValueError):
        make_planner("quantum")


def test_options_carry_planner_through_the_wire():
    options = VerifyOptions(planner=EQUIVALENCE_CLASS)
    assert VerifyOptions().planner == BY_LABEL
    assert VerifyOptions.from_json(options.to_json()).planner == EQUIVALENCE_CLASS

    class Args:
        planner = EQUIVALENCE_CLASS

    assert VerifyOptions.from_args(Args()).planner == EQUIVALENCE_CLASS


def test_cli_exposes_planner_flag():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["verify", "--zone", "minimal", "--planner", "equivalence-class"]
    )
    assert args.planner == EQUIVALENCE_CLASS
    with pytest.raises(SystemExit):
        parser.parse_args(["verify", "--planner", "quantum"])


def test_incremental_verifier_reads_planner_from_options():
    from repro.incremental.engine import IncrementalVerifier

    zone = _zone()
    verifier = IncrementalVerifier(
        zone, options=VerifyOptions(planner=EQUIVALENCE_CLASS)
    )
    assert isinstance(verifier.planner, ECPlanner)
    assert isinstance(IncrementalVerifier(zone).planner, ByLabelPlanner)


def test_plan_unit_is_frozen_and_describable():
    unit = PlanUnit(id="x", kind="partition", part_key="apex", members=("apex",))
    assert "apex" in unit.describe()
    with pytest.raises(Exception):
        unit.id = "y"
    assert isinstance(ByLabelPlanner(), QueryPlanner)
    assert isinstance(ECPlanner(), QueryPlanner)

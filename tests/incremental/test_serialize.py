"""JSON round-trips for summaries, refinement reports and bug reports."""

import pytest

from repro.core.layers import resolution_layers
from repro.core.pipeline import BugReport, VerificationSession, verify_engine
from repro.dns.zonefile import parse_zone_text
from repro.incremental.serialize import (
    SerializationError,
    bug_from_json,
    bug_to_json,
    report_from_json,
    report_to_json,
    result_from_json,
    result_to_json,
    summary_from_json,
    summary_to_json,
    term_from_json,
    term_to_json,
    value_from_json,
    value_to_json,
)
from repro.solver.terms import (
    and_,
    bfalse,
    btrue,
    bvar,
    eq,
    ge,
    iadd,
    iconst,
    imul,
    isub,
    ivar,
    le,
    ne,
    or_,
)
from repro.summary.effects import NewTag
from repro.symex.values import UNINIT, Pointer

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
*.tenants IN A 192.0.2.90
"""


@pytest.fixture(scope="module")
def zone():
    return parse_zone_text(ZONE_TEXT)


class TestTerms:
    @pytest.mark.parametrize(
        "term",
        [
            btrue(),
            bfalse(),
            bvar("flag"),
            eq(ivar("x"), 5),
            ne(ivar("x"), ivar("y")),
            le(ivar("nameLen"), 7),
            and_(ge(ivar("n0"), 1), or_(eq(ivar("qtype"), 1), eq(ivar("qtype"), 28))),
            isub(iadd(ivar("x"), imul(3, ivar("y"))), 7),
            iconst(42),
        ],
    )
    def test_roundtrip(self, term):
        assert term_from_json(term_to_json(term)) == term

    def test_unknown_rejected(self):
        with pytest.raises(SerializationError):
            term_to_json(object())
        with pytest.raises(SerializationError):
            term_from_json({"t": "mystery"})


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            UNINIT,
            True,
            0,
            17,
            "label",
            NewTag(3),
            Pointer(12, (0, 4)),
            Pointer(None),
            (1, NewTag(0), Pointer(2, (1,))),
            ivar("x"),
            bvar("b"),
        ],
    )
    def test_roundtrip(self, value):
        restored = value_from_json(value_to_json(value))
        assert restored == value
        assert type(restored) is type(value) or value is UNINIT

    def test_symbolic_pointer_path_rejected(self):
        with pytest.raises(SerializationError):
            value_to_json(Pointer(1, (ivar("i"),)))


class TestSummaryRoundtrip:
    def test_layer_summaries_roundtrip_and_verify(self, zone):
        """Reloaded summaries drive verification to the same verdict."""
        baseline = verify_engine(zone, "v1.0")

        donor = VerificationSession(zone, "v1.0")
        payloads = []
        for layer in resolution_layers():
            summary = donor.summarize_layer(layer)
            payloads.append(summary_to_json(summary))

        session = VerificationSession(zone, "v1.0")
        for layer, payload in zip(resolution_layers(), payloads):
            summary = summary_from_json(payload, layer.params(session))
            assert summary.name == layer.function
            assert len(summary.cases) > 0
            session.executor.bindings.bind_summary(layer.function, summary)
        result = session.verify(use_summaries=False)  # layers already bound

        assert result.verified == baseline.verified
        assert sorted(
            (b.categories, b.qname_codes, b.qtype_code) for b in result.bugs
        ) == sorted((b.categories, b.qname_codes, b.qtype_code) for b in baseline.bugs)


class TestReportRoundtrip:
    def test_refinement_report_trims_and_replays(self, zone):
        session = VerificationSession(zone, "v1.0")
        original = session.verify()
        report = original.refinement
        restored = report_from_json(report_to_json(report))
        assert restored.verified == report.verified
        assert restored.code_paths == report.code_paths
        assert len(restored.mismatches) == len(report.mismatches)
        for a, b in zip(restored.mismatches, report.mismatches):
            assert a.kind == b.kind
            assert a.observation == b.observation
            if b.model is None:
                assert a.model is None
            else:
                assert a.model.as_dict() == b.model.as_dict()
            assert a.code_outcome is None  # trimmed by design


class TestBugAndResult:
    def test_bug_roundtrip(self, zone):
        result = verify_engine(zone, "v1.0")
        assert result.bugs, "v1.0 must produce bugs on this zone"
        for bug in result.bugs:
            restored = bug_from_json(bug_to_json(bug))
            assert restored == bug

    def test_result_roundtrip(self, zone):
        result = verify_engine(zone, "v1.0")
        payload = result_to_json(result, cache_stats={"hits": 1, "misses": 2})
        assert payload["cache"] == {"hits": 1, "misses": 2}
        restored = result_from_json(payload)
        assert restored.verified == result.verified
        assert restored.solver_checks == result.solver_checks
        assert restored.bugs == result.bugs
        assert [layer.name for layer in restored.layers] == [
            layer.name for layer in result.layers
        ]

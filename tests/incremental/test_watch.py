"""WatchDaemon: mtime polling, per-update logging, failure resilience."""

import json
import os

import pytest

from repro.incremental.cache import SummaryCache
from repro.incremental.watch import WatchDaemon

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
"""


@pytest.fixture()
def zone_file(tmp_path):
    path = tmp_path / "zone.db"
    path.write_text(ZONE_TEXT)
    return path


def bump_mtime(path, offset=2.0):
    st = os.stat(path)
    os.utime(path, (st.st_atime, st.st_mtime + offset))


def make_daemon(zone_file, lines, version="verified"):
    return WatchDaemon(
        zone_file,
        version=version,
        cache=SummaryCache(memory_only=True),
        interval=0.01,
        log=lines.append,
    )


class TestWatchDaemon:
    def test_initial_verification(self, zone_file):
        lines = []
        daemon = make_daemon(zone_file, lines)
        event = daemon.poll_once()
        assert event.reason == "initial"
        assert event.outcome.result.verified
        payload = json.loads(lines[0])
        assert payload["sequence"] == 1
        assert payload["verified"] is True
        assert payload["latency_seconds"] > 0
        assert payload["reuse"]["partitions_recomputed"] > 0

    def test_unchanged_file_is_quiet(self, zone_file):
        daemon = make_daemon(zone_file, [])
        daemon.poll_once()
        assert daemon.poll_once() is None
        assert daemon.poll_once() is None

    def test_change_triggers_incremental_reverify(self, zone_file):
        lines = []
        daemon = make_daemon(zone_file, lines)
        daemon.poll_once()
        zone_file.write_text(ZONE_TEXT.replace("192.0.2.80", "192.0.2.81"))
        bump_mtime(zone_file)
        event = daemon.poll_once()
        assert event.reason == "change"
        payload = json.loads(lines[-1])
        assert payload["reuse"]["partitions_reused"] > 0
        assert payload["reuse"]["recomputed_keys"] == ["sub:www"]
        assert payload["reuse"]["records_changed"] == 2

    def test_buggy_update_reports_bugs(self, zone_file):
        lines = []
        daemon = make_daemon(zone_file, lines, version="v1.0")
        event = daemon.poll_once()
        assert event.outcome.result.verified is False
        payload = json.loads(lines[-1])
        assert payload["bugs"] > 0
        assert payload["bug_categories"]

    def test_parse_error_event_and_recovery(self, zone_file):
        lines = []
        daemon = make_daemon(zone_file, lines)
        daemon.poll_once()
        zone_file.write_text("not a zone {{{")
        bump_mtime(zone_file)
        event = daemon.poll_once()
        assert event.error is not None
        assert "error" in json.loads(lines[-1])
        # Restore a valid file: the daemon picks it back up.
        zone_file.write_text(ZONE_TEXT)
        bump_mtime(zone_file, 4.0)
        event = daemon.poll_once()
        assert event.error is None
        assert event.outcome.result.verified

    def test_missing_file_event_reported_once(self, tmp_path):
        lines = []
        daemon = make_daemon(tmp_path / "gone.db", lines)
        event = daemon.poll_once()
        assert event.error is not None and "stat failed" in event.error
        assert daemon.poll_once() is None  # absence is not re-reported
        # The file appearing clears the suppressed error and verifies.
        (tmp_path / "gone.db").write_text(ZONE_TEXT)
        event = daemon.poll_once()
        assert event.error is None
        assert event.outcome.result.verified

    def test_run_with_max_updates(self, zone_file):
        lines = []
        daemon = make_daemon(zone_file, lines)
        processed = daemon.run(max_updates=1)
        assert processed == 1
        assert len(lines) == 1


class TestWatchSupervision:
    def make_supervised(self, zone_file, lines, max_attempts=2, max_failures=3):
        from repro.resilience.supervise import RetryPolicy

        return WatchDaemon(
            zone_file,
            cache=SummaryCache(memory_only=True),
            interval=0.01,
            log=lines.append,
            retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.0,
                              max_delay=0.0),
            max_failures=max_failures,
            sleep=lambda _delay: None,
        )

    def test_transient_stat_fault_is_retried_to_success(self, zone_file):
        from repro.resilience import FaultPlan, faults

        lines = []
        daemon = self.make_supervised(zone_file, lines)
        plan = FaultPlan.scripted({faults.SITE_WATCH_STAT: 1})
        with faults.active(plan):
            event = daemon.poll_once()
        assert event.error is None
        assert event.outcome.result.verified
        assert event.health["attempts"] == 2
        assert event.health["breaker"] == "closed"
        assert json.loads(lines[-1])["health"]["attempts"] == 2

    def test_transient_read_fault_is_retried_to_success(self, zone_file):
        from repro.resilience import FaultPlan, faults

        lines = []
        daemon = self.make_supervised(zone_file, lines)
        plan = FaultPlan.scripted({faults.SITE_WATCH_READ: 1})
        with faults.active(plan):
            event = daemon.poll_once()
        assert event.error is None
        assert event.outcome.result.verified

    def test_exhausted_retries_become_failure_event(self, zone_file):
        from repro.resilience import FaultPlan, faults

        lines = []
        daemon = self.make_supervised(zone_file, lines)
        plan = FaultPlan.scripted({faults.SITE_WATCH_STAT: 2})
        with faults.active(plan):
            event = daemon.poll_once()
        assert event.error is not None and "stat failed" in event.error
        assert daemon.breaker.consecutive_failures == 1
        # The next clean poll closes the loop again.
        event = daemon.poll_once()
        assert event.error is None
        assert daemon.breaker.consecutive_failures == 0

    def test_breaker_opens_and_stops_polling(self, tmp_path):
        lines = []
        daemon = self.make_supervised(tmp_path / "gone.db", lines,
                                      max_failures=3)
        first = daemon.poll_once()
        assert first is not None and first.error is not None
        assert daemon.poll_once() is None  # deduped, still counted
        event = daemon.poll_once()  # third failure trips the breaker
        assert daemon.breaker.is_open
        assert event is not None  # the trip itself is reported
        assert event.health["breaker"] == "open"
        assert daemon.poll_once() is None  # open breaker: no more work
        # run() must exit instead of spinning on a dead input.
        assert daemon.run(max_updates=10) == 0

    def test_jitter_schedule_is_deterministic(self):
        from repro.resilience.supervise import RetryPolicy

        a = list(RetryPolicy(max_attempts=4, jitter_seed=3).delays())
        b = list(RetryPolicy(max_attempts=4, jitter_seed=3).delays())
        c = list(RetryPolicy(max_attempts=4, jitter_seed=4).delays())
        assert a == b
        assert a != c
        assert len(a) == 3
        assert all(delay >= 0 for delay in a)

"""Native-vs-symbolic execution consistency.

GoPy's defining property is its double life: the same source runs under
CPython and under the AbsLLVM symbolic executor. For *concrete* inputs the
two must agree exactly — this is the correctness contract of the frontend
plus the executor, and it is what makes counterexample validation by native
re-execution sound. Hypothesis drives library functions and whole-engine
queries through both interpreters.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import _compiled
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy import nameops, nodestack, rawname, respops
from repro.engine.versions import verified
from repro.solver import iconst
from repro.spec import toplevel
from repro.symex import Executor, HeapLoader, PathState, concretize_value
from repro.zonegen import evaluation_zone


def symbolic_call(modules, name, python_args):
    """Run ``name`` symbolically on fully concrete arguments."""
    executor = Executor([_compiled(m) for m in modules])
    state = PathState()
    loader = HeapLoader(state.memory)
    args = [loader.load(a) for a in python_args]
    outcomes = executor.run(name, args, state=state)
    assert len(outcomes) == 1, "concrete inputs must yield exactly one path"
    out = outcomes[0]
    if out.is_panic:
        return ("panic", out.panic.kind)
    if out.value is None:
        return ("void", None)
    return ("value", concretize_value(out.value, out.state.memory))


codes_st = st.lists(st.integers(1, 5).map(lambda k: k * 65536), min_size=0, max_size=5)


class TestNameOps:
    @settings(max_examples=60, deadline=None)
    @given(codes_st, codes_st)
    def test_name_match(self, a, b):
        native = nameops.name_match(list(a), list(b))
        kind, value = symbolic_call([nameops], "name_match", [list(a), list(b)])
        assert kind == "value" and value == native

    @settings(max_examples=60, deadline=None)
    @given(codes_st, codes_st)
    def test_shared_prefix_len(self, a, b):
        native = nameops.shared_prefix_len(list(a), list(b))
        kind, value = symbolic_call([nameops], "shared_prefix_len", [list(a), list(b)])
        assert kind == "value" and value == native


bytes_st = st.lists(st.integers(97, 122), min_size=1, max_size=4)
name_bytes_st = st.lists(bytes_st, min_size=1, max_size=3).map(
    lambda labels: sum(([46] + lab for lab in labels), [])[1:]
)


class TestRawName:
    @settings(max_examples=60, deadline=None)
    @given(name_bytes_st, name_bytes_st)
    def test_compare_raw(self, n1, n2):
        native = rawname.compare_raw(list(n1), list(n2))
        kind, value = symbolic_call([rawname], "compare_raw", [list(n1), list(n2)])
        assert kind == "value" and value == native


class TestWholeEngine:
    @pytest.fixture(scope="class")
    def setup(self):
        zone = evaluation_zone()
        encoder = ZoneEncoder(zone, extra_labels=["zz", "deep"])
        tree = control.build_domain_tree(encoder)
        flat = control.build_flat_zone(encoder)
        base = [_compiled(nameops), _compiled(nodestack), _compiled(respops)]
        modules = base + [_compiled(verified, externs=base)]
        return zone, encoder, tree, flat, modules

    @pytest.mark.parametrize(
        "qname,qtype",
        [
            ("www.example.com.", 1),
            ("example.com.", 255),
            ("alias.example.com.", 1),
            ("zz.wild.example.com.", 15),
            ("deep.sub.example.com.", 1),
            ("zz.example.com.", 1),
        ],
    )
    def test_resolve_concrete_query(self, setup, qname, qtype):
        from repro.dns.name import DnsName

        zone, encoder, tree, flat, modules = setup
        codes = [
            encoder.interner.code(lab)
            for lab in DnsName.from_text(qname).reversed_labels
        ]
        native = control.run_engine_concrete(verified, tree, codes, qtype)

        executor = Executor(modules)
        state = PathState()
        loader = HeapLoader(state.memory)
        tree_ptr = loader.load(tree)
        q_ptr = loader.load(list(codes))
        resp_ptr = executor.new_object(state, "Response")
        outcomes = executor.run(
            "resolve", [tree_ptr, q_ptr, iconst(qtype), resp_ptr], state=state
        )
        assert len(outcomes) == 1 and not outcomes[0].is_panic
        decoded = concretize_value(
            resp_ptr, outcomes[0].state.memory, registry=executor.registry
        )
        assert decoded["rcode"] == native.rcode
        assert decoded["aa"] == native.aa
        for section in ("answer", "authority", "additional"):
            got = [(r["rtype"], r["rdata_id"]) for r in decoded[section]]
            want = [(r.rtype, r.rdata_id) for r in getattr(native, section)]
            assert got == want, section

    def test_dev_crash_is_panic_symbolically(self, setup):
        from repro.dns.name import DnsName
        from repro.engine.versions import dev

        zone, encoder, tree, flat, _ = setup
        codes = [
            encoder.interner.code(lab)
            for lab in DnsName.from_text("ent.wild.example.com.").reversed_labels
        ]
        with pytest.raises(IndexError):
            control.run_engine_concrete(dev, tree, codes, 1)

        base = [_compiled(nameops), _compiled(nodestack)]
        executor = Executor(base + [_compiled(dev, externs=base)])
        state = PathState()
        loader = HeapLoader(state.memory)
        outcomes = executor.run(
            "resolve",
            [
                loader.load(tree),
                loader.load(list(codes)),
                iconst(1),
                executor.new_object(state, "Response"),
            ],
            state=state,
        )
        assert len(outcomes) == 1
        assert outcomes[0].is_panic
        assert outcomes[0].panic.kind == "index-out-of-bounds"

"""Property-based three-way agreement over random zones and queries.

Hypothesis drives both the zone generator and the query selection; for
every sample the corrected engine (native), the executable top-level
specification (native), and the reference resolver must agree semantically.
This is the widest concrete net over the shared semantics — anything it
catches would be a bug in one of the three independent implementations (or
in the encoders between them).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import QUERYABLE_TYPES
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response as GoResponse
from repro.spec import reference_resolve, toplevel
from repro.zonegen import GeneratorConfig, ZoneGenerator

_CACHE = {}


def zone_setup(seed, index):
    key = (seed, index)
    if key not in _CACHE:
        config = GeneratorConfig(
            seed=seed, num_hosts=4, num_wildcards=1, num_delegations=1,
            num_cnames=1, num_mx=1,
        )
        zone = ZoneGenerator(config).generate(index)
        encoder = ZoneEncoder(zone, extra_labels=["zz", "qq"])
        _CACHE[key] = (
            zone,
            encoder,
            control.build_domain_tree(encoder),
            control.build_flat_zone(encoder),
        )
    return _CACHE[key]


@st.composite
def zone_and_query(draw):
    seed = draw(st.integers(0, 3))
    index = draw(st.integers(0, 3))
    zone, encoder, tree, flat = zone_setup(seed, index)
    names = sorted({r.rname for r in zone})
    base = draw(st.sampled_from(names))
    mutation = draw(st.sampled_from(["exact", "parent", "child", "sibling", "deep"]))
    if mutation == "parent" and len(base) > len(zone.origin):
        qname = base.parent()
    elif mutation == "child":
        qname = base.prepend("zz")
    elif mutation == "sibling" and len(base) > len(zone.origin):
        qname = base.parent().prepend("qq")
    elif mutation == "deep":
        qname = base.prepend("zz").prepend("qq")
    else:
        qname = base
    qtype = draw(st.sampled_from(QUERYABLE_TYPES))
    return zone, encoder, tree, flat, Query(qname, qtype)


class TestThreeWayAgreement:
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(zone_and_query())
    def test_engine_spec_reference_agree(self, sample):
        zone, encoder, tree, flat, query = sample
        codes = []
        for label in query.qname.reversed_labels:
            if label == "*":
                codes.append(1)
            else:
                codes.append(encoder.interner.code(label))

        engine_go = control.run_engine_concrete(
            control.ENGINE_VERSIONS["verified"], tree, codes, int(query.qtype)
        )
        spec_go = GoResponse()
        toplevel.rrlookup(flat, list(codes), int(query.qtype), spec_go)

        # Engine vs spec at the encoded level.
        assert engine_go.rcode == spec_go.rcode, query.to_text()
        assert engine_go.aa == spec_go.aa, query.to_text()
        for section in ("answer", "authority", "additional"):
            got = sorted(
                (tuple(r.rname), r.rtype, r.rdata_id)
                for r in getattr(engine_go, section)
            )
            want = sorted(
                (tuple(r.rname), r.rtype, r.rdata_id)
                for r in getattr(spec_go, section)
            )
            assert got == want, (query.to_text(), section)

        # Spec vs reference at the domain-model level.
        spec_resp = encoder.decode_response(query, spec_go)
        ref_resp = reference_resolve(zone, query)
        assert spec_resp.semantically_equal(ref_resp), query.to_text()

"""End-to-end integration: the pipeline over random zone configurations.

Mirrors the paper's operating mode (section 6.5): each run of the overall
verification proves correctness and safety of the engine deployed on a
concrete zone snapshot. The verified engine must prove out on every random
zone; buggy versions must be caught whenever the zone exercises their bug
class (which the differential tester independently confirms).
"""

import pytest

from repro.core import verify_engine
from repro.testing import differential_test
from repro.zonegen import GeneratorConfig, ZoneGenerator


def make_zones(count=3):
    generator = ZoneGenerator(
        GeneratorConfig(
            seed=77, num_hosts=4, num_wildcards=1, num_delegations=1,
            num_cnames=1, num_mx=1,
        )
    )
    return list(generator.stream(count))


class TestVerifiedOnRandomZones:
    @pytest.mark.parametrize("index", range(3))
    def test_verified_proves_out(self, index):
        zone = make_zones(3)[index]
        result = verify_engine(zone, "verified")
        assert result.verified, result.describe()


class TestSymbolicMatchesDifferential:
    """On every (zone, version) pair the verifier and the differential
    tester must agree on whether the version is buggy — the verifier just
    proves it instead of sampling."""

    @pytest.mark.parametrize("version", ["v1.0", "v3.0", "dev"])
    def test_agreement(self, version):
        zone = make_zones(1)[0]
        diff = differential_test(zone, version)
        verif = verify_engine(zone, version)
        if not diff.clean:
            assert not verif.verified, (
                f"differential found divergences but verification passed: "
                f"{diff.describe()}"
            )
        if verif.verified:
            assert diff.clean


class TestSafetyAcrossZones:
    def test_dev_crash_found_when_ent_present(self):
        # The dev crash needs an empty non-terminal; the evaluation zone
        # has one, so safety must fail there.
        from repro.core import RUNTIME_ERROR
        from repro.zonegen import evaluation_zone

        result = verify_engine(evaluation_zone(), "dev")
        assert RUNTIME_ERROR in result.bug_categories()

    def test_verified_safe_everywhere(self):
        for zone in make_zones(2):
            result = verify_engine(zone, "verified")
            assert all(
                mismatch.kind != "code-panic"
                for mismatch in result.refinement.mismatches
            )

"""RFC 4592 section 2.2.1: the canonical wildcard test vectors.

The RFC spells out an example zone and the exact responses a conformant
authoritative server must give. These vectors pin the *absolute* semantics
of this repository (engine-vs-spec equivalence alone could not catch a
shared misreading of the RFC): every vector is checked against the
reference resolver, the executable top-level specification, and the
corrected engine — and the full verification pipeline must prove the
engine on this zone.
"""

import pytest

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.zonefile import parse_zone_text
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response as GoResponse
from repro.spec import reference_resolve, toplevel

# The RFC 4592 example zone, minimally adapted: glue-style A records for
# the subdel nameservers live outside the zone in the RFC; we keep the NS
# targets external (no glue), which the RFC's referral vector allows.
RFC_ZONE = """\
$ORIGIN example.
@ IN SOA ns.example.com. hostmaster.example. 1 3600 600 86400 300
@ IN NS ns.example.com.
@ IN NS ns.example.net.
*.example. IN TXT "this is a wildcard"
*.example. IN MX 10 host1.example.
sub.*.example. IN TXT "this is not a wildcard"
host1.example. IN A 192.0.2.1
_ssh._tcp.host1.example. IN SRV 0 0 22 host1.example.
_ssh._tcp.host2.example. IN SRV 0 0 22 host1.example.
subdel.example. IN NS ns.example.com.
subdel.example. IN NS ns.example.net.
"""

EXTRA_LABELS = ["host3", "foo", "bar", "_telnet", "ghost", "host2", "host"]


@pytest.fixture(scope="module")
def setup():
    zone = parse_zone_text(RFC_ZONE)
    encoder = ZoneEncoder(zone, extra_labels=EXTRA_LABELS)
    tree = control.build_domain_tree(encoder)
    flat = control.build_flat_zone(encoder)
    return zone, encoder, tree, flat


def resolve_all_three(setup, qname_text, qtype):
    """(reference, spec, engine) responses, the latter two decoded."""
    zone, encoder, tree, flat = setup
    query = Query(DnsName.from_text(qname_text), qtype)
    codes = [encoder.interner.code(lab) for lab in query.qname.reversed_labels]

    reference = reference_resolve(zone, query)

    go_spec = GoResponse()
    toplevel.rrlookup(flat, list(codes), int(qtype), go_spec)
    spec = encoder.decode_response(query, go_spec)

    go_engine = control.run_engine_concrete(
        control.ENGINE_VERSIONS["verified"], tree, codes, int(qtype)
    )
    engine = encoder.decode_response(query, go_engine)
    return reference, spec, engine


# (qname, qtype, expected rcode, expectation on the answer section)
# Expectations follow RFC 4592 section 2.2.1's response table.
VECTORS = [
    # "QNAME=host3.example., QTYPE=MX: the response will be a 'no error'
    # response with a synthesized MX record."
    ("host3.example.", RRType.MX, RCode.NOERROR, "synthesized-mx"),
    # "QNAME=host3.example., QTYPE=A: 'no error, no data' — the wildcard
    # owns no A record."
    ("host3.example.", RRType.A, RCode.NOERROR, "empty"),
    # "QNAME=foo.bar.example., QTYPE=TXT: synthesized — the wildcard
    # covers multiple labels."
    ("foo.bar.example.", RRType.TXT, RCode.NOERROR, "synthesized-txt"),
    # "QNAME=host1.example., QTYPE=MX: no error, no data — an exact match
    # exists, the wildcard does not apply."
    ("host1.example.", RRType.MX, RCode.NOERROR, "empty"),
    # "QNAME=sub.*.example., QTYPE=MX: no error, no data — that exact name
    # exists (interior asterisk is not special)."
    ("sub.*.example.", RRType.MX, RCode.NOERROR, "empty"),
    # Its TXT does exist, answered literally.
    ("sub.*.example.", RRType.TXT, RCode.NOERROR, "literal-txt"),
    # "QNAME=_telnet._tcp.host1.example., QTYPE=SRV: NXDOMAIN — the
    # closest encloser _tcp.host1.example. exists (an empty non-terminal
    # deeper than the wildcard's parent), so *.example. does not apply."
    ("_telnet._tcp.host1.example.", RRType.SRV, RCode.NXDOMAIN, "empty"),
    # "QNAME=host.subdel.example., QTYPE=A: referral" — below the cut.
    ("host.subdel.example.", RRType.A, RCode.NOERROR, "referral"),
    # "QNAME=ghost.*.example., QTYPE=MX: NXDOMAIN — the closest encloser
    # *.example. exists but has no wildcard child."
    ("ghost.*.example.", RRType.MX, RCode.NXDOMAIN, "empty"),
    # A query for the wildcard's own name answers its literal records.
    ("*.example.", RRType.TXT, RCode.NOERROR, "literal-txt"),
    # Empty non-terminal created by the SRV records.
    ("_tcp.host1.example.", RRType.A, RCode.NOERROR, "empty"),
]


class TestRFC4592Vectors:
    @pytest.mark.parametrize("qname,qtype,rcode,expectation", VECTORS)
    def test_vector(self, setup, qname, qtype, rcode, expectation):
        reference, spec, engine = resolve_all_three(setup, qname, qtype)

        for label, response in (("reference", reference), ("spec", spec), ("engine", engine)):
            assert response.rcode is rcode, (label, qname, response.rcode)

        for response in (reference, spec, engine):
            if expectation == "empty":
                assert not response.answer
            elif expectation == "referral":
                assert not response.aa
                assert len(response.authority) == 2
                assert all(r.rtype is RRType.NS for r in response.authority)
            elif expectation == "synthesized-mx":
                assert len(response.answer) == 1
                record = response.answer[0]
                assert record.rtype is RRType.MX
                assert record.rname == DnsName.from_text(qname)
            elif expectation == "synthesized-txt":
                assert len(response.answer) == 1
                assert response.answer[0].rname == DnsName.from_text(qname)
            elif expectation == "literal-txt":
                assert len(response.answer) == 1
                assert response.answer[0].rtype is RRType.TXT

        # All three agree completely, not just on the checked fields.
        assert spec.semantically_equal(reference)
        assert engine.semantically_equal(reference)

    def test_negative_answers_carry_soa(self, setup):
        reference, spec, engine = resolve_all_three(
            setup, "ghost.*.example.", RRType.MX
        )
        for response in (reference, spec, engine):
            assert [r.rtype for r in response.authority] == [RRType.SOA]

    def test_full_verification_on_rfc_zone(self):
        from repro.core import verify_engine

        zone = parse_zone_text(RFC_ZONE)
        result = verify_engine(zone, "verified")
        assert result.verified, result.describe()

    def test_v2_wildcard_bug_fails_rfc_vectors(self, setup):
        """The RFC's multi-label vector (foo.bar.example.) is exactly what
        v2.0's seeded bug #6 breaks — the vector suite doubles as a
        regression net for the bug catalogue."""
        zone, encoder, tree, flat = setup
        codes = [
            encoder.interner.code(lab)
            for lab in DnsName.from_text("foo.bar.example.").reversed_labels
        ]
        bad = control.run_engine_concrete(
            control.ENGINE_VERSIONS["v2.0"], tree, codes, int(RRType.TXT)
        )
        assert bad.rcode == int(RCode.NXDOMAIN)  # wrong, per the RFC

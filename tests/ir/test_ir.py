"""Unit tests for the AbsLLVM IR layer."""

import pytest

from repro.ir import (
    Alloca,
    BasicBlock,
    BinOp,
    Br,
    Call,
    CondBr,
    ConstBool,
    ConstInt,
    ConstNull,
    Function,
    GEP,
    ICmp,
    IRValidationError,
    ListType,
    Load,
    Module,
    NamedType,
    Panic,
    PointerType,
    Register,
    Ret,
    Store,
    StructType,
    print_function,
    print_module,
    validate_function,
    validate_module,
)
from repro.ir.types import BOOL, INT, VOID, TypeRegistry


class TestTypes:
    def test_scalar_equality(self):
        assert INT == INT and BOOL == BOOL and INT != BOOL

    def test_pointer_structural_equality(self):
        assert PointerType(INT) == PointerType(INT)
        assert PointerType(INT) != PointerType(BOOL)

    def test_list_type(self):
        assert ListType(INT) == ListType(INT)
        assert repr(ListType(INT)) == "List[Int]"

    def test_named_matches_struct(self):
        struct = StructType("Node", [("v", INT)])
        assert NamedType("Node") == struct
        assert struct == NamedType("Node")
        assert hash(NamedType("Node")) == hash(struct)

    def test_registry_define_and_resolve(self):
        registry = TypeRegistry()
        struct = registry.define("Node", [("v", INT), ("next", PointerType(NamedType("Node")))])
        assert registry.resolve(NamedType("Node")) is struct
        with pytest.raises(ValueError):
            registry.define("Node", [])

    def test_field_lookup(self):
        struct = StructType("S", [("a", INT), ("b", BOOL)])
        assert struct.field_index("b") == 1
        assert struct.field_type(0) == INT
        with pytest.raises(KeyError):
            struct.field_index("nope")


class TestInstructions:
    def test_binop_validates_op(self):
        with pytest.raises(ValueError):
            BinOp(Register("r"), "div", ConstInt(1), ConstInt(2))

    def test_icmp_validates_pred(self):
        with pytest.raises(ValueError):
            ICmp(Register("r"), "ult", ConstInt(1), ConstInt(2))

    def test_gep_requires_indices(self):
        with pytest.raises(ValueError):
            GEP(Register("r"), Register("base"), [])

    def test_terminator_successors(self):
        assert Br("next").successors() == ("next",)
        assert CondBr(Register("c"), "a", "b").successors() == ("a", "b")
        assert Ret(None).successors() == ()
        assert Panic("explicit").successors() == ()

    def test_const_int_rejects_bool(self):
        with pytest.raises(TypeError):
            ConstInt(True)


def build_function(terminate=True, branch_target=None):
    fn = Function("f", [("a", INT)], INT)
    entry = fn.new_block("entry")
    exit_block = fn.new_block("exit")
    reg = Register("r1")
    entry.append(BinOp(reg, "add", Register("a"), ConstInt(1)))
    entry.terminate(Br(branch_target if branch_target else exit_block.label))
    if terminate:
        exit_block.terminate(Ret(reg))
    return fn


class TestValidation:
    def test_valid_function(self):
        fn = build_function()
        validate_function(fn)

    def test_unterminated_block_rejected(self):
        fn = build_function(terminate=False)
        with pytest.raises(IRValidationError):
            validate_function(fn)

    def test_unknown_branch_target_rejected(self):
        fn = build_function(branch_target="nowhere")
        with pytest.raises(IRValidationError):
            validate_function(fn)

    def test_double_assignment_rejected(self):
        fn = Function("f", [], VOID)
        block = fn.new_block("entry")
        block.append(Alloca(Register("r"), INT))
        block.append(Alloca(Register("r"), INT))
        block.terminate(Ret(None))
        with pytest.raises(IRValidationError):
            validate_function(fn)

    def test_undefined_use_rejected(self):
        fn = Function("f", [], INT)
        block = fn.new_block("entry")
        block.terminate(Ret(Register("ghost")))
        with pytest.raises(IRValidationError):
            validate_function(fn)

    def test_block_double_terminate_rejected(self):
        block = BasicBlock("b")
        block.terminate(Ret(None))
        with pytest.raises(ValueError):
            block.terminate(Ret(None))

    def test_module_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(build_function())
        with pytest.raises(ValueError):
            module.add_function(build_function())

    def test_bad_list_intrinsic_rejected(self):
        module = Module("m")
        fn = Function("f", [], VOID)
        block = fn.new_block("entry")
        block.append(Call(None, "list.reverse", []))
        block.terminate(Ret(None))
        module.add_function(fn)
        with pytest.raises(IRValidationError):
            validate_module(module)


class TestPrinter:
    def test_function_text(self):
        text = print_function(build_function())
        assert "define Int @f(Int %a)" in text
        assert "add" in text and "ret" in text

    def test_module_text_includes_structs(self):
        module = Module("m")
        module.types.define("Node", [("v", INT)])
        module.add_function(build_function())
        text = print_module(module)
        assert "%Node = { v: Int }" in text


class TestModuleMerge:
    def test_merge_brings_functions_and_types(self):
        a = Module("a")
        a.types.define("S", [("x", INT)])
        a.add_function(build_function())
        b = Module("b")
        b.merge(a)
        assert b.has_function("f")
        assert "S" in b.types

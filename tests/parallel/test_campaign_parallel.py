"""Determinism contract: a pooled campaign's canonical report is
bit-identical to the sequential one's — across worker counts, under
injected faults, and through SIGKILL-and-resume."""

import os
import subprocess
import sys
import time

import pytest

import repro
from repro.core import run_campaign
from repro.resilience.checkpoint import load

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Tiny zones keep each unit around a second.
TINY = dict(num_hosts=2, num_wildcards=1, num_delegations=0,
            num_cnames=1, num_mx=0)


class TestWorkerCountIdentity:
    def test_sequential_equals_pooled(self):
        seq = run_campaign("verified", num_zones=3, seed=11, **TINY)
        one = run_campaign("verified", num_zones=3, seed=11, workers=1, **TINY)
        four = run_campaign("verified", num_zones=3, seed=11, workers=4, **TINY)
        assert seq.canonical_json() == one.canonical_json()
        assert one.canonical_json() == four.canonical_json()

    def test_buggy_version_identical_across_workers(self):
        one = run_campaign("v1.0", num_zones=2, seed=11, workers=1, **TINY)
        two = run_campaign("v1.0", num_zones=2, seed=11, workers=2, **TINY)
        assert one.canonical_json() == two.canonical_json()
        assert any(v.bug_categories for v in two.verdicts)

    def test_pooled_report_carries_perf_counters(self):
        report = run_campaign("verified", num_zones=2, seed=11, workers=2,
                              **TINY)
        perf = report.perf
        assert perf["workers"] == 2
        assert perf["units_total"] == 2
        assert perf["units_completed"] == 2
        assert perf["wall_seconds"] > 0
        assert perf["units_per_second"] > 0
        assert perf["solve_seconds"] > 0
        # Canonical identity never includes perf/timing.
        assert "perf" not in report.canonical_json()

    def test_injected_worker_faults_identical_across_workers(self):
        # A seeded per-unit plan: each unit derives its plan from
        # (spec, unit id), so worker count cannot change what fires.
        spec = "seed:7:0.7"
        one = run_campaign("verified", num_zones=3, seed=11, workers=1,
                           faults=spec, **TINY)
        two = run_campaign("verified", num_zones=3, seed=11, workers=2,
                           faults=spec, **TINY)
        assert one.canonical_json() == two.canonical_json()

    def test_scripted_fault_degrades_unit_to_typed_error(self):
        # compile=1 fires in every unit (scripted plans are re-instantiated
        # per unit id) — all units degrade to ERROR, none aborts the run.
        report = run_campaign("verified", num_zones=2, seed=11, workers=2,
                              faults="compile=1", **TINY)
        assert all(v.verdict == "ERROR" for v in report.verdicts)
        assert all(v.error_class == "compile" for v in report.verdicts)


class TestResume:
    def test_truncated_checkpoint_resume_matches_sequential(self, tmp_path):
        ckpt = tmp_path / "par.jsonl"
        baseline = run_campaign("verified", num_zones=3, seed=11, workers=2,
                                checkpoint=str(ckpt), **TINY)
        lines = ckpt.read_text().splitlines()
        assert len(lines) == 4  # header + 3 units
        ckpt.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_campaign("verified", num_zones=3, seed=11, workers=2,
                               checkpoint=str(ckpt), resume=True, **TINY)
        assert resumed.canonical_json() == baseline.canonical_json()
        assert resumed.perf["units_replayed"] == 1

    def test_parallel_resumes_sequential_checkpoint(self, tmp_path):
        """Header and unit keys are shared: the two modes can resume each
        other's checkpoints."""
        ckpt = tmp_path / "seq.jsonl"
        baseline = run_campaign("verified", num_zones=2, seed=11,
                                checkpoint=str(ckpt), **TINY)
        resumed = run_campaign("verified", num_zones=2, seed=11, workers=2,
                               checkpoint=str(ckpt), resume=True, **TINY)
        assert resumed.canonical_json() == baseline.canonical_json()
        assert resumed.perf["units_replayed"] == 2

    def test_sigkill_mid_parallel_campaign_then_resume(self, tmp_path):
        """Kill the parallel campaign's parent process mid-run; the
        funneled checkpoint must be loadable and the resumed pooled run
        bit-identical to an uninterrupted sequential run."""
        ckpt = tmp_path / "killed.jsonl"
        script = (
            "import sys\n"
            "from repro.core import run_campaign\n"
            "run_campaign('verified', num_zones=4, seed=11, workers=2, "
            "checkpoint=sys.argv[1], num_hosts=2, num_wildcards=1, "
            "num_delegations=0, num_cnames=1, num_mx=0)\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(ckpt)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 120
        units_at_kill = 0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                if ckpt.exists():
                    lines = [l for l in ckpt.read_text().splitlines() if l.strip()]
                    units_at_kill = max(0, len(lines) - 1)
                break
            if ckpt.exists():
                lines = [l for l in ckpt.read_text().splitlines() if l.strip()]
                if len(lines) >= 2:  # header + >= 1 unit
                    units_at_kill = len(lines) - 1
                    proc.kill()
                    proc.wait()
                    break
            time.sleep(0.01)
        else:
            proc.kill()
            proc.wait()
            pytest.fail("parallel campaign never checkpointed a unit")
        assert units_at_kill >= 1

        header, units, _corrupt = load(ckpt)
        assert header is not None
        assert len(units) >= 1

        resumed = run_campaign("verified", num_zones=4, seed=11, workers=2,
                               checkpoint=str(ckpt), resume=True, **TINY)
        fresh = run_campaign("verified", num_zones=4, seed=11, **TINY)
        assert resumed.canonical_json() == fresh.canonical_json()
        _, final_units, _ = load(ckpt)
        assert len(final_units) == 4

"""Partition-level fan-out: one verify split across the pool merges to
the same result for every worker count."""

from repro.core.options import VerifyOptions
from repro.core.pipeline import verify_engine
from repro.zonegen import GeneratorConfig, ZoneGenerator

CONFIG = GeneratorConfig(seed=11, num_hosts=2, num_wildcards=1,
                         num_delegations=0, num_cnames=1, num_mx=0)


def canonical(result):
    """The deterministic identity of a merged verify: everything except
    wall-clock timings."""
    return {
        "verdict": result.verdict,
        "verified": result.verified,
        "unknown_reason": result.unknown_reason,
        "solver_checks": result.solver_checks,
        "spurious_mismatches": result.spurious_mismatches,
        "bugs": [
            (b.version, b.categories, b.qname_codes, b.qtype_code,
             b.description, b.validated)
            for b in result.bugs
        ],
        "layers": [
            (l.name, l.route, l.paths, l.cases, l.verified)
            for l in result.layers
        ],
    }


class TestPartitionedVerify:
    def test_worker_counts_agree_on_verified_engine(self):
        zone = ZoneGenerator(CONFIG).generate(0)
        one = verify_engine(zone, "verified", VerifyOptions(workers=1))
        two = verify_engine(zone, "verified", VerifyOptions(workers=2))
        assert canonical(one) == canonical(two)
        assert one.verdict == "VERIFIED"
        # Partition-prefixed layer names prove the partitioned path ran.
        assert any(l.name.startswith(("apex:", "outside:", "miss:"))
                   for l in one.layers)

    def test_worker_counts_agree_on_buggy_engine(self):
        zone = ZoneGenerator(CONFIG).generate(0)
        one = verify_engine(zone, "v1.0", VerifyOptions(workers=1))
        two = verify_engine(zone, "v1.0", VerifyOptions(workers=2))
        assert canonical(one) == canonical(two)
        assert one.verdict == "BUG"
        assert one.bugs  # bug reports survive the worker JSON round-trip

    def test_partitioned_result_carries_phase_counters(self):
        zone = ZoneGenerator(CONFIG).generate(0)
        result = verify_engine(zone, "verified", VerifyOptions(workers=2))
        assert set(result.phase_seconds) == {"compile", "summarize", "solve"}
        assert result.phase_seconds["solve"] > 0

    def test_per_unit_budget_degrades_to_unknown(self):
        zone = ZoneGenerator(CONFIG).generate(0)
        result = verify_engine(
            zone, "verified", VerifyOptions(workers=2, fuel=10)
        )
        assert result.verdict == "UNKNOWN"
        assert result.verified is False

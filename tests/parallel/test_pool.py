"""The pool primitive: completion-order yields, worker death, stalls."""

import os
import time

from repro.parallel.pool import DIED, OK, TIMEOUT, run_units


def square(payload):
    return {"value": payload["x"] * payload["x"]}


def die_on_three(payload):
    if payload["x"] == 3:
        os._exit(13)  # simulated OOM-kill: no exception, no cleanup
    return {"value": payload["x"]}


def sleep_forever(payload):
    if payload["x"] == 0:
        return {"value": 0}
    time.sleep(600)


def raise_value_error(payload):
    raise ValueError(f"unit {payload['x']}")


PAYLOADS = [{"x": x} for x in range(5)]


class TestInProcess:
    def test_workers_one_runs_inline(self):
        results = list(run_units(square, PAYLOADS, workers=1))
        assert results == [
            (i, OK, {"value": i * i}) for i in range(5)
        ]

    def test_single_payload_runs_inline_even_with_many_workers(self):
        results = list(run_units(square, [{"x": 7}], workers=8))
        assert results == [(0, OK, {"value": 49})]

    def test_worker_exception_propagates(self):
        try:
            list(run_units(raise_value_error, [{"x": 0}], workers=1))
        except ValueError as exc:
            assert "unit 0" in str(exc)
        else:
            raise AssertionError("worker exception swallowed")


class TestPooled:
    def test_all_units_complete(self):
        results = list(run_units(square, PAYLOADS, workers=2))
        assert sorted(index for index, _, _ in results) == list(range(5))
        assert all(status == OK for _, status, _ in results)
        by_index = {index: value for index, _, value in results}
        assert by_index == {i: {"value": i * i} for i in range(5)}

    def test_worker_exception_propagates(self):
        try:
            list(run_units(raise_value_error, PAYLOADS[:2], workers=2))
        except ValueError:
            pass
        else:
            raise AssertionError("worker exception swallowed")

    def test_worker_death_yields_died_not_hang(self):
        results = list(run_units(die_on_three, PAYLOADS, workers=2))
        statuses = {index: status for index, status, _ in results}
        # Every unit is accounted for — no unit silently vanishes.
        assert sorted(statuses) == list(range(5))
        assert statuses[3] == DIED
        # A broken pool surrenders the in-flight remainder as DIED too;
        # units that finished before the death report OK.
        assert all(status in (OK, DIED) for status in statuses.values())
        oks = [value for _, status, value in results if status == OK]
        assert all(value is not None for value in oks)

    def test_stall_yields_timeout(self):
        started = time.monotonic()
        results = list(
            run_units(sleep_forever, [{"x": 0}, {"x": 1}], workers=2,
                      grace_seconds=1.0)
        )
        assert time.monotonic() - started < 30
        statuses = {index: status for index, status, _ in results}
        assert statuses[0] == OK
        assert statuses[1] == TIMEOUT

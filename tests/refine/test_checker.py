"""Unit tests for refinement and safety checking."""

import pytest

from repro.frontend import compile_source
from repro.solver import Solver, SolveResult, ge, iconst, ivar, le
from repro.refine import check_refinement, check_safety, value_diff_formula
from repro.symex import Executor, HeapLoader, ListVal, PathState, SymexError


ABS_SOURCE = """
def code_abs(a: int) -> int:
    if a >= 0:
        return a
    return 0 - a

def spec_abs(a: int) -> int:
    if a < 0:
        return 0 - a
    return a

def buggy_abs(a: int) -> int:
    if a > 0:
        return a
    return a
"""


def make_executor(extra=""):
    return Executor([compile_source(ABS_SOURCE + extra)])


class TestRefinement:
    def test_equivalent_implementations_verify(self):
        ex = make_executor()
        report = check_refinement(
            ex, "code_abs", "spec_abs", [ivar("a")], [ivar("a")]
        )
        assert report.verified
        assert report.pairs_checked >= 2

    def test_buggy_implementation_fails_with_model(self):
        ex = make_executor()
        report = check_refinement(
            ex, "buggy_abs", "spec_abs", [ivar("a")], [ivar("a")]
        )
        assert not report.verified
        mismatch = report.mismatches[0]
        assert mismatch.kind == "output-differs"
        # The counterexample must actually exhibit the bug: a < 0.
        assert mismatch.model.get_int("a") < 0

    def test_precondition_can_rescue(self):
        ex = make_executor()
        report = check_refinement(
            ex,
            "buggy_abs",
            "spec_abs",
            [ivar("a")],
            [ivar("a")],
            pre=[ge(ivar("a"), 0)],
        )
        assert report.verified

    def test_relation_axioms_link_encodings(self):
        # code works on x, spec on y; relation says y == x + 1.
        source = (
            "def code_inc(x: int) -> int:\n"
            "    return x + 1\n"
            "def spec_ident(y: int) -> int:\n"
            "    return y\n"
        )
        ex = Executor([compile_source(source)])
        from repro.solver import eq, iadd

        report = check_refinement(
            ex,
            "code_inc",
            "spec_ident",
            [ivar("x")],
            [ivar("y")],
            relation=[eq(ivar("y"), iadd(ivar("x"), 1))],
        )
        assert report.verified

    def test_reachable_code_panic_is_mismatch(self):
        source = (
            "\ndef panicky(xs: list[int]) -> int:\n"
            "    return xs[3]\n"
            "def spec_zero(xs: list[int]) -> int:\n"
            "    return 0\n"
        )
        ex = make_executor(source)
        state = PathState()
        lst = HeapLoader(state.memory).load([1])
        report = check_refinement(ex, "panicky", "spec_zero", [lst], [lst], state=state)
        assert not report.verified
        assert report.mismatches[0].kind == "code-panic"

    def test_panicking_spec_rejected(self):
        source = (
            "\ndef code_zero(xs: list[int]) -> int:\n"
            "    return 0\n"
            "def spec_panicky(xs: list[int]) -> int:\n"
            "    return xs[3]\n"
        )
        ex = make_executor(source)
        state = PathState()
        lst = HeapLoader(state.memory).load([1])
        with pytest.raises(SymexError):
            check_refinement(ex, "code_zero", "spec_panicky", [lst], [lst], state=state)

    def test_report_describe(self):
        ex = make_executor()
        report = check_refinement(ex, "code_abs", "spec_abs", [ivar("a")], [ivar("a")])
        assert "VERIFIED" in report.describe()


class TestSafety:
    def test_guarded_access_is_safe(self):
        source = (
            "def safe(xs: list[int], i: int) -> int:\n"
            "    if i >= 0 and i < len(xs):\n"
            "        return xs[i]\n"
            "    return -1\n"
        )
        ex = Executor([compile_source(source)])
        state = PathState()
        lst = HeapLoader(state.memory).load([5, 6, 7])
        report = check_safety(ex, "safe", [lst, ivar("i")], state=state)
        assert report.safe

    def test_unguarded_access_is_unsafe_with_model(self):
        source = (
            "def unsafe(xs: list[int], i: int) -> int:\n"
            "    return xs[i]\n"
        )
        ex = Executor([compile_source(source)])
        state = PathState()
        lst = HeapLoader(state.memory).load([5, 6, 7])
        report = check_safety(ex, "unsafe", [lst, ivar("i")], state=state)
        assert not report.safe
        info, model = report.reachable_panics[0]
        assert info.kind == "index-out-of-bounds"
        bad = model.get_int("i")
        assert bad < 0 or bad >= 3


class TestDiffFormula:
    def test_scalar_diff(self):
        state = PathState()
        formula = value_diff_formula(
            ivar("a"), state.memory, iconst(3), state.memory
        )
        solver = Solver()
        assert solver.check(formula) is SolveResult.SAT
        assert solver.model().get_int("a") != 3

    def test_struct_diff_structural(self):
        from repro.symex import StructVal

        state = PathState()
        p1 = state.memory.alloc(StructVal("S", (iconst(1), iconst(2))))
        p2 = state.memory.alloc(StructVal("S", (iconst(1), ivar("b"))))
        formula = value_diff_formula(p1, state.memory, p2, state.memory)
        solver = Solver()
        assert solver.check(formula) is SolveResult.SAT  # b != 2 possible
        from repro.solver import eq

        assert solver.check(formula, eq(ivar("b"), 2)) is SolveResult.UNSAT

    def test_list_diff_lengths(self):
        state = PathState()
        l1 = state.memory.alloc(ListVal.concrete((iconst(1),)))
        l2 = state.memory.alloc(ListVal.concrete((iconst(1), iconst(2))))
        formula = value_diff_formula(l1, state.memory, l2, state.memory)
        solver = Solver()
        # Lengths differ concretely: formula is just true.
        assert solver.check(formula) is SolveResult.SAT

    def test_identical_lists_unsat(self):
        state = PathState()
        l1 = state.memory.alloc(ListVal.concrete((iconst(1), ivar("x"))))
        l2 = state.memory.alloc(ListVal.concrete((iconst(1), ivar("x"))))
        formula = value_diff_formula(l1, state.memory, l2, state.memory)
        solver = Solver()
        assert solver.check(formula) is SolveResult.UNSAT

    def test_null_vs_struct(self):
        from repro.symex import NULL, StructVal

        state = PathState()
        ptr = state.memory.alloc(StructVal("S", (iconst(1),)))
        formula = value_diff_formula(NULL, state.memory, ptr, state.memory)
        solver = Solver()
        assert solver.check(formula) is SolveResult.SAT

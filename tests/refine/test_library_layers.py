"""Library-layer refinement proofs (the Figure 2/3 story).

The NodeStack reproduces the paper's leaky-encapsulation anti-pattern: the
``level`` field is maintained by ``stack_push`` but read (and used as an
index) directly by other code. These proofs run with ``level`` *symbolic*
while the node storage stays concrete — the partial abstraction the
flexible memory model exists for — and rely on concretization-by-forking
for the symbolic index read in ``stack_top``.

The harness inlines the (tiny) library source so ``compile_source`` can
build a self-contained module; the functions are verbatim copies of
:mod:`repro.engine.gopy.nodestack` (a test below pins that).
"""

import inspect

from repro.engine.gopy import nodestack
from repro.frontend import compile_source
from repro.frontend.runtime import GoStruct
from repro.refine import check_refinement, check_safety
from repro.solver import ge, iconst, ivar, le
from repro.symex import Executor, HeapLoader, ListVal, PathState, StructVal

HARNESS = """
class TreeNode(GoStruct):
    name: list[int]
    left: "TreeNode"

class NodeStack(GoStruct):
    nodes: list[TreeNode]
    level: int

def stack_push(s: NodeStack, n: TreeNode) -> None:
    s.nodes.append(n)
    s.level = s.level + 1

def stack_top(s: NodeStack) -> TreeNode:
    return s.nodes[s.level - 1]

def push_then_top(s: NodeStack, n: TreeNode) -> TreeNode:
    stack_push(s, n)
    return stack_top(s)

def push_then_level(s: NodeStack, n: TreeNode) -> int:
    old = s.level
    stack_push(s, n)
    return s.level - old

def spec_identity(s: NodeStack, n: TreeNode) -> TreeNode:
    return n

def spec_one(s: NodeStack, n: TreeNode) -> int:
    return 1
"""


class _Node(GoStruct):
    name: list[int]
    left: "_Node"


def make_executor():
    return Executor([compile_source(HARNESS, "nodestack_harness")])


def make_stack(state, num_nodes, level_expr):
    """A stack whose node storage is concrete but whose level is the given
    (possibly symbolic) expression — partial abstraction in one struct."""
    loader = HeapLoader(state.memory)
    nodes = [loader.load(_Node(name=[i])) for i in range(num_nodes)]
    nodes_ptr = state.memory.alloc(ListVal.concrete(nodes))
    stack_ptr = state.memory.alloc(StructVal("NodeStack", (nodes_ptr, level_expr)))
    node_arg = loader.load(_Node(name=[99]))
    return stack_ptr, node_arg


class TestHarnessMatchesLibrary:
    def test_functions_are_verbatim_copies(self):
        library = inspect.getsource(nodestack)
        for fragment in (
            "s.nodes.append(n)",
            "s.level = s.level + 1",
            "return s.nodes[s.level - 1]",
        ):
            assert fragment in HARNESS and fragment in library


class TestNodeStackRefinement:
    def test_push_then_top_returns_pushed_node(self):
        """Under the stack-consistency invariant (level == storage size,
        here kept abstract as a symbolic value pinned by the precondition),
        top-after-push is the pushed node."""
        from repro.solver import eq

        executor = make_executor()
        state = PathState()
        level = ivar("level")
        stack_ptr, node = make_stack(state, 3, level)
        report = check_refinement(
            executor,
            "push_then_top",
            "spec_identity",
            [stack_ptr, node],
            [stack_ptr, node],
            state=state,
            pre=[eq(level, 3)],
        )
        assert report.verified, report.describe()

    def test_push_then_top_fails_without_invariant(self):
        """Dropping the consistency invariant makes the property false —
        the checker must produce the inconsistent-level counterexample
        (this is the hazard the leaky ``level`` field creates)."""
        executor = make_executor()
        state = PathState()
        level = ivar("level")
        stack_ptr, node = make_stack(state, 3, level)
        report = check_refinement(
            executor,
            "push_then_top",
            "spec_identity",
            [stack_ptr, node],
            [stack_ptr, node],
            state=state,
            pre=[ge(level, 0), le(level, 3)],
        )
        assert not report.verified
        model = report.mismatches[0].model
        assert model.get_int("level") < 3

    def test_push_increments_level_by_one(self):
        executor = make_executor()
        state = PathState()
        level = ivar("level")
        stack_ptr, node = make_stack(state, 2, level)
        report = check_refinement(
            executor,
            "push_then_level",
            "spec_one",
            [stack_ptr, node],
            [stack_ptr, node],
            state=state,
            pre=[ge(level, 0), le(level, 2)],
        )
        assert report.verified, report.describe()

    def test_inconsistent_level_caught_by_safety(self):
        """If external code corrupted level beyond the storage (the risk
        the leaky field creates), stack_top's bounds check panics — and the
        safety checker reports it with a model."""
        executor = make_executor()
        state = PathState()
        level = ivar("level")
        stack_ptr, node = make_stack(state, 2, level)
        report = check_safety(
            executor,
            "push_then_top",
            [stack_ptr, node],
            state=state,
            pre=[ge(level, 0), le(level, 8)],  # allows level > storage
        )
        assert not report.safe
        info, model = report.reachable_panics[0]
        assert info.kind == "index-out-of-bounds"
        assert model.get_int("level") > 2

    def test_top_of_empty_stack_panics(self):
        executor = make_executor()
        state = PathState()
        stack_ptr, _ = make_stack(state, 0, iconst(0))
        outcomes = executor.run("stack_top", [stack_ptr], state=state)
        assert all(o.is_panic for o in outcomes)

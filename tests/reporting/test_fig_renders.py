"""Coverage for the figure renderers (Table-2 rendering is covered by the
benchmark suite; these keep the fig renderers honest inside the fast test
run)."""

from repro.reporting import render_fig10, render_fig12
from repro.zonegen import minimal_zone


class TestFig10Render:
    def test_contains_both_controls(self):
        text = render_fig10(max_labels=2, max_label_len=2)
        assert "VERIFIED" in text
        assert "negative control" in text
        # The small bound cannot expose the boundary bug; the negative
        # control only flips to FAILED at max_label_len >= 3, which the
        # benchmark exercises. Here we just require both runs rendered.
        assert text.count("compare_raw") >= 2


class TestFig12Render:
    def test_bars_and_layers(self):
        text = render_fig12(zone=minimal_zone(), version="verified")
        for layer in ("Name", "TreeSearch", "Find", "Resolve"):
            assert layer in text
        assert "#" in text  # the bar chart
        assert "under one minute" in text

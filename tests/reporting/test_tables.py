"""Tests for the table/figure renderers (the evaluation artifacts)."""

import pytest

from repro.reporting import (
    EXPECTED_TABLE2,
    render_table1,
    render_table3,
    table1_rows,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_rows()

    def test_path_count_matches_paper_scale(self, rows):
        # The paper's example tree yields 14 paths; ours differs slightly in
        # shape (an extra ns1 node) but must be the same order of magnitude.
        assert 10 <= len(rows) <= 25

    def test_every_node_has_exact_path(self, rows):
        exact_nodes = {r.matched_node for r in rows if r.kind == "EXACT"}
        for node in (
            "example.com.",
            "www.example.com.",
            "cs.example.com.",
            "web.cs.example.com.",
            "zoo.cs.example.com.",
        ):
            assert node in exact_nodes

    def test_miss_paths_report_closest_encloser(self, rows):
        misses = [r for r in rows if r.kind == "MISS"]
        assert misses
        assert all(r.matched_node.endswith("example.com.") for r in misses)

    def test_example_qnames_satisfy_kind(self, rows):
        # An EXACT row's example qname must be the matched node itself.
        for row in rows:
            if row.kind == "EXACT":
                assert row.example_qname == row.matched_node

    def test_render(self):
        text = render_table1()
        assert "Table 1" in text and "EXACT" in text


class TestTable2Static:
    def test_expected_covers_nine_rows(self):
        assert len(EXPECTED_TABLE2) == 9
        assert {v for _, v, _, _ in EXPECTED_TABLE2} == {"v1.0", "v2.0", "v3.0", "dev"}


class TestTable3:
    def test_render(self):
        text = render_table3()
        assert "implementation" in text
        assert "top-level specification" in text

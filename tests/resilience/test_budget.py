"""Budget: cooperative fuel + deadline accounting."""

import pytest

from repro.resilience import Budget, BudgetExhausted
from repro.resilience.budget import DEADLINE_POLL_MASK
from repro.resilience import verdicts


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestFuel:
    def test_charge_consumes_fuel(self):
        budget = Budget(fuel=10)
        for _ in range(10):
            budget.charge()
        assert budget.fuel_remaining == 0
        assert budget.steps_charged == 10

    def test_exhaustion_raises_typed_reason(self):
        budget = Budget(fuel=3)
        budget.charge(3)
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.charge()
        assert excinfo.value.reason == verdicts.REASON_FUEL
        assert "4 steps" in str(excinfo.value)

    def test_unbounded_fuel_never_exhausts(self):
        budget = Budget(wall_seconds=1000.0)
        budget.charge(10_000)
        assert budget.fuel_remaining is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Budget(fuel=0)
        with pytest.raises(ValueError):
            Budget(wall_seconds=-1.0)


class TestDeadline:
    def test_deadline_polled_not_per_step(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=5.0, clock=clock).start()
        clock.now = 100.0  # way past the deadline
        # No poll happens until steps_charged crosses the mask boundary.
        budget.charge(DEADLINE_POLL_MASK)
        with pytest.raises(BudgetExhausted) as excinfo:
            budget.charge()  # step count hits the poll boundary
        assert excinfo.value.reason == verdicts.REASON_DEADLINE

    def test_check_deadline_is_immediate(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock).start()
        budget.check_deadline()  # still inside
        clock.now = 2.0
        with pytest.raises(BudgetExhausted):
            budget.check_deadline()

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock).start()
        clock.now = 0.5
        budget.start()  # must not re-arm the deadline
        clock.now = 1.2
        with pytest.raises(BudgetExhausted):
            budget.check_deadline()


class TestNonRaisingProbe:
    def test_exhausted_is_none_while_solvent(self):
        budget = Budget(fuel=5, wall_seconds=100.0)
        assert budget.exhausted() is None
        assert budget.solver_consults == 1

    def test_exhausted_reports_fuel(self):
        budget = Budget(fuel=1)
        with pytest.raises(BudgetExhausted):
            budget.charge(2)
        assert budget.exhausted() == verdicts.REASON_FUEL

    def test_exhausted_reports_deadline(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock).start()
        clock.now = 5.0
        assert budget.exhausted() == verdicts.REASON_DEADLINE

    def test_exhausted_never_raises(self):
        clock = FakeClock()
        budget = Budget(fuel=1, wall_seconds=1.0, clock=clock).start()
        clock.now = 99.0
        with pytest.raises(BudgetExhausted):
            budget.charge(5)
        for _ in range(3):
            assert budget.exhausted() is not None


class TestSnapshot:
    def test_snapshot_fields(self):
        clock = FakeClock()
        budget = Budget(fuel=10, wall_seconds=4.0, clock=clock).start()
        clock.now = 1.5
        budget.charge(3)
        snap = budget.snapshot()
        assert snap["fuel"] == 10
        assert snap["fuel_remaining"] == 7
        assert snap["steps_charged"] == 3
        assert snap["wall_seconds"] == 4.0
        assert snap["elapsed_seconds"] == 1.5

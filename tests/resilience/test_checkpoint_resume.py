"""Crash-safe checkpoints: atomic appends, tolerant loads, bit-identical resume."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.core import run_campaign
from repro.core.campaign import Campaign
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load,
    unit_address,
)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = CheckpointWriter(path, {"kind": "campaign", "id": "x"})
        writer.append({"index": 0}, {"verdict": "VERIFIED"})
        writer.append({"index": 1}, {"verdict": "BUG"})
        header, units, corrupt = load(path)
        assert header["kind"] == "campaign"
        assert corrupt == 0
        assert units[unit_address({"index": 0})] == {"verdict": "VERIFIED"}
        assert units[unit_address({"index": 1})] == {"verdict": "BUG"}

    def test_missing_file_is_empty(self, tmp_path):
        assert load(tmp_path / "absent.jsonl") == (None, {}, 0)

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = CheckpointWriter(path, {"id": "x"})
        writer.append({"index": 0}, {"verdict": "VERIFIED"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"unit": {"index": 1}, "payl')  # torn write
        header, units, corrupt = load(path)
        assert header is not None
        assert len(units) == 1
        assert corrupt == 1

    def test_resume_header_mismatch_refuses(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointWriter(path, {"id": "campaign-a"})
        with pytest.raises(CheckpointError):
            CheckpointWriter.open(path, {"id": "campaign-b"}, resume=True)

    def test_resume_replays_units(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = CheckpointWriter(path, {"id": "x"})
        writer.append({"index": 0}, {"verdict": "VERIFIED"})
        resumed, units = CheckpointWriter.open(path, {"id": "x"}, resume=True)
        assert units == {unit_address({"index": 0}): {"verdict": "VERIFIED"}}
        resumed.append({"index": 1}, {"verdict": "BUG"})
        _, units, _ = load(path)
        assert len(units) == 2

    def test_without_resume_discards_existing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = CheckpointWriter(path, {"id": "x"})
        writer.append({"index": 0}, {"verdict": "VERIFIED"})
        _, units = CheckpointWriter.open(path, {"id": "x"}, resume=False)
        assert units == {}
        _, on_disk, _ = load(path)
        assert on_disk == {}


class TestCampaignResume:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        """Simulated crash: truncate the checkpoint to header + first unit
        + a torn line, resume, and demand the same canonical report."""
        ckpt = tmp_path / "campaign.jsonl"
        baseline = run_campaign("verified", num_zones=3, seed=11,
                                checkpoint=str(ckpt))
        lines = ckpt.read_text().splitlines()
        assert len(lines) == 4  # header + 3 units
        ckpt.write_text("\n".join(lines[:2]) + '\n{"unit": {"ind\n')
        resumed = run_campaign("verified", num_zones=3, seed=11,
                               checkpoint=str(ckpt), resume=True)
        assert resumed.canonical_json() == baseline.canonical_json()

    def test_resume_skips_completed_units(self, tmp_path):
        ckpt = tmp_path / "campaign.jsonl"
        run_campaign("verified", num_zones=2, seed=11, checkpoint=str(ckpt))

        calls = []
        original = Campaign._run_unit

        def counting(self, index, *args, **kwargs):
            calls.append(index)
            return original(self, index, *args, **kwargs)

        Campaign._run_unit = counting
        try:
            run_campaign("verified", num_zones=2, seed=11,
                         checkpoint=str(ckpt), resume=True)
        finally:
            Campaign._run_unit = original
        assert calls == []  # everything replayed from the checkpoint

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        """The acceptance scenario: SIGKILL a running campaign mid-unit,
        resume from its checkpoint, and compare against an uninterrupted
        run under the canonical (timing-free) projection."""
        ckpt = tmp_path / "killed.jsonl"
        script = (
            "import sys\n"
            "from repro.core import run_campaign\n"
            "run_campaign('verified', num_zones=4, seed=11, "
            "checkpoint=sys.argv[1])\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(ckpt)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill as soon as at least one unit has been checkpointed but
        # (almost certainly) before the campaign finishes.
        deadline = time.monotonic() + 120
        units_at_kill = 0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                # Raced to completion before we could kill it: the resume
                # below then degenerates to a full replay, still valid.
                if ckpt.exists():
                    lines = [
                        line
                        for line in ckpt.read_text().splitlines()
                        if line.strip()
                    ]
                    units_at_kill = max(0, len(lines) - 1)
                break
            if ckpt.exists():
                lines = [
                    line
                    for line in ckpt.read_text().splitlines()
                    if line.strip()
                ]
                if len(lines) >= 2:  # header + >= 1 unit
                    units_at_kill = len(lines) - 1
                    proc.kill()
                    proc.wait()
                    break
            time.sleep(0.01)
        else:
            proc.kill()
            proc.wait()
            pytest.fail("campaign subprocess never checkpointed a unit")
        assert units_at_kill >= 1

        # Whatever survived the kill must be a loadable checkpoint.
        header, units, _corrupt = load(ckpt)
        assert header is not None
        assert len(units) >= 1

        resumed = run_campaign("verified", num_zones=4, seed=11,
                               checkpoint=str(ckpt), resume=True)
        fresh = run_campaign("verified", num_zones=4, seed=11)
        assert resumed.canonical_json() == fresh.canonical_json()
        # The final checkpoint holds all four units.
        _, final_units, _ = load(ckpt)
        assert len(final_units) == 4
        payloads = [json.loads(json.dumps(p)) for p in final_units.values()]
        assert all("verdict" in p for p in payloads)

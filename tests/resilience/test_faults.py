"""Fault plans: determinism, site semantics, and the all-sites drill."""

import pytest

from repro.resilience import FaultPlan, InjectedFault, faults, verdicts


class TestScriptedPlans:
    def test_fires_exactly_n_times(self):
        plan = FaultPlan.scripted({faults.SITE_CACHE_READ: 2})
        with faults.active(plan):
            results = [faults.should_fire(faults.SITE_CACHE_READ) for _ in range(5)]
        assert results == [True, True, False, False, False]
        assert plan.fired[faults.SITE_CACHE_READ] == 2
        assert plan.consults[faults.SITE_CACHE_READ] == 5

    def test_bool_sequence_script(self):
        plan = FaultPlan.scripted({faults.SITE_SOLVER: [False, True, False]})
        with faults.active(plan):
            results = [faults.should_fire(faults.SITE_SOLVER) for _ in range(4)]
        assert results == [False, True, False, False]

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.scripted({"no.such.site": 1})

    def test_sites_are_independent(self):
        plan = FaultPlan.scripted({faults.SITE_CACHE_READ: 1})
        with faults.active(plan):
            assert faults.should_fire(faults.SITE_CACHE_WRITE) is False
            assert faults.should_fire(faults.SITE_CACHE_READ) is True


class TestSeededPlans:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            plan = FaultPlan.seeded(seed, rate=0.5)
            with faults.active(plan):
                return [
                    faults.should_fire(faults.SITE_SOLVER) for _ in range(64)
                ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)  # astronomically unlikely to tie

    def test_sites_filter(self):
        plan = FaultPlan.seeded(1, rate=1.0, sites=[faults.SITE_SOLVER])
        with faults.active(plan):
            assert faults.should_fire(faults.SITE_SOLVER) is True
            assert faults.should_fire(faults.SITE_CACHE_READ) is False


class TestRaisingSemantics:
    def test_io_sites_raise_real_oserror(self):
        plan = FaultPlan.scripted({faults.SITE_CACHE_READ: 1})
        with faults.active(plan):
            with pytest.raises(OSError):
                faults.maybe_raise(faults.SITE_CACHE_READ)

    def test_compile_site_raises_tagged_fault(self):
        plan = FaultPlan.scripted({faults.SITE_COMPILE: 1})
        with faults.active(plan):
            with pytest.raises(InjectedFault) as excinfo:
                faults.maybe_raise(faults.SITE_COMPILE)
        assert excinfo.value.taxonomy == verdicts.ERR_COMPILE
        assert verdicts.classify_error(excinfo.value)[0] == verdicts.ERR_COMPILE

    def test_no_plan_is_a_noop(self):
        faults.clear()
        assert faults.should_fire(faults.SITE_SOLVER) is False
        faults.maybe_raise(faults.SITE_COMPILE)  # must not raise

    def test_active_restores_previous_plan(self):
        outer = FaultPlan.scripted({faults.SITE_SOLVER: 1})
        inner = FaultPlan.scripted({})
        faults.install(outer)
        try:
            with faults.active(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        finally:
            faults.clear()


class TestCampaignContinues:
    def test_one_broken_unit_does_not_abort_the_run(self):
        from repro.core import run_campaign

        plan = FaultPlan.scripted({faults.SITE_COMPILE: 1})
        with faults.active(plan):
            report = run_campaign("verified", num_zones=2, seed=11)
        assert report.zones_run == 2
        first, second = report.verdicts
        assert first.verdict == verdicts.ERROR
        assert first.error_class == verdicts.ERR_COMPILE
        assert first.error_detail
        assert second.verdict == verdicts.VERIFIED
        assert report.zones_errored == 1
        assert "ERROR (compile)" in report.describe()


class TestFaultDrill:
    def test_every_site_degrades_to_a_typed_verdict(self):
        from repro.testing import fault_drill

        report = fault_drill("verified")
        assert report.clean, report.describe()
        sites = {outcome.site for outcome in report.outcomes}
        assert sites == set(faults.KNOWN_SITES)
        for outcome in report.outcomes:
            assert outcome.fired > 0
        by_site = {o.site: o for o in report.outcomes}
        assert by_site[faults.SITE_COMPILE].verdict == "ERROR(compile)"
        assert by_site[faults.SITE_SOLVER].verdict == "UNKNOWN(solver-unknown)"
        assert by_site[faults.SITE_CACHE_CORRUPT].verdict == verdicts.VERIFIED

"""Typed UNKNOWN verdicts end-to-end through VerificationSession.verify."""

import pytest

from repro.core.pipeline import VerificationSession
from repro.incremental.serialize import result_from_json, result_to_json
from repro.resilience import Budget, verdicts
from repro.solver.solver import Solver
from repro.solver.terms import bvar, not_, or_
from repro.zonegen import corpus


def hard_disjunctive_chain(n=12):
    """A formula cycle the SAT search must actually split on: conjoined
    onto the preconditions it forces ``node_limit`` exhaustion."""
    vars_ = [bvar(f"fz{i}") for i in range(n)]
    chain = [or_(a, not_(b)) for a, b in zip(vars_, vars_[1:])]
    chain.append(or_(vars_[-1], vars_[0]))
    return chain


class TestSolverExhaustionUnknown:
    def test_node_limit_yields_unknown_verdict(self):
        """Satellite: an engineered query space whose constraints exhaust
        the solver's node limit must surface UNKNOWN(solver-unknown), not a
        claimed proof and not a crash."""
        session = VerificationSession(
            corpus.minimal_zone(), "verified", solver=Solver(node_limit=3)
        )
        session.restrict(hard_disjunctive_chain())
        result = session.verify()

        assert result.verdict == verdicts.UNKNOWN
        assert result.unknown_reason == verdicts.REASON_SOLVER
        assert result.verified is False
        assert "UNKNOWN (solver-unknown)" in result.describe()

    def test_roomier_limit_closes_the_same_proof(self):
        session = VerificationSession(
            corpus.minimal_zone(), "verified", solver=Solver(node_limit=200000)
        )
        session.restrict(hard_disjunctive_chain())
        result = session.verify()
        assert result.verdict == verdicts.VERIFIED


class TestBudgetUnknown:
    def test_fuel_exhaustion_yields_partial_coverage(self):
        budget = Budget(fuel=2000)
        result = VerificationSession(
            corpus.minimal_zone(), "verified", budget=budget
        ).verify()

        assert result.verdict == verdicts.UNKNOWN
        assert result.unknown_reason == verdicts.REASON_FUEL
        assert result.partial is not None
        assert result.partial["steps"] >= 2000
        assert result.partial["budget"]["fuel"] == 2000
        described = result.describe()
        assert "UNKNOWN (step-fuel)" in described
        assert "partial coverage" in described

    def test_deadline_exhaustion_reports_reason(self):
        clock_values = iter([0.0] + [10.0] * 10_000_000)
        budget = Budget(wall_seconds=1.0, clock=lambda: next(clock_values))
        result = VerificationSession(
            corpus.minimal_zone(), "verified", budget=budget
        ).verify()
        assert result.verdict == verdicts.UNKNOWN
        assert result.unknown_reason == verdicts.REASON_DEADLINE

    def test_unbudgeted_run_still_verifies(self):
        result = VerificationSession(corpus.minimal_zone(), "verified").verify()
        assert result.verdict == verdicts.VERIFIED
        assert result.unknown_reason is None
        assert result.partial is None


class TestVerdictSerialization:
    def test_unknown_round_trips_through_json(self):
        budget = Budget(fuel=2000)
        result = VerificationSession(
            corpus.minimal_zone(), "verified", budget=budget
        ).verify()
        loaded = result_from_json(result_to_json(result))
        assert loaded.verdict == verdicts.UNKNOWN
        assert loaded.unknown_reason == result.unknown_reason
        assert loaded.partial == result.partial

    def test_legacy_payload_defaults(self):
        result = VerificationSession(corpus.minimal_zone(), "verified").verify()
        payload = result_to_json(result)
        for key in ("verdict", "unknown_reason", "error_class",
                    "error_detail", "partial"):
            payload.pop(key)
        loaded = result_from_json(payload)
        assert loaded.verdict == verdicts.VERIFIED
        assert loaded.unknown_reason is None


class TestClassifyError:
    def test_taxonomy_attribute_wins(self):
        class Tagged(Exception):
            taxonomy = verdicts.ERR_CACHE_IO

        taxonomy, detail = verdicts.classify_error(Tagged("boom"))
        assert taxonomy == verdicts.ERR_CACHE_IO
        assert "boom" in detail

    def test_oserror_is_io(self):
        assert verdicts.classify_error(OSError("x"))[0] == verdicts.ERR_IO

    def test_gopy_error_is_compile(self):
        from repro.frontend.errors import GoPyError

        assert (
            verdicts.classify_error(GoPyError("bad module"))[0]
            == verdicts.ERR_COMPILE
        )

    def test_everything_else_is_internal(self):
        assert (
            verdicts.classify_error(RuntimeError("x"))[0]
            == verdicts.ERR_INTERNAL
        )

    def test_verdict_kind_validated(self):
        with pytest.raises(ValueError):
            verdicts.Verdict("MAYBE")

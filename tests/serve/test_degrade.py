"""The graceful-degradation ladder: thresholds, hysteresis, serving behaviour.

Controller unit tests drive :class:`OverloadController` with a fake clock
and hand-built signals; the integration tests pin the controller at each
rung and assert what ``handle_packet`` actually sends on the wire —
TC=1 truncation (RFC 1035 4.2.1), header-only SERVFAIL shedding,
unanswered drops — and that every rung keeps the metrics ledger conserved.
"""

import struct

import pytest

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.wire import build_query, parse_response
from repro.serve import ZoneServer
from repro.serve import degrade
from repro.zonegen import evaluation_zone


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_controller(**kwargs):
    kwargs.setdefault("qps_capacity", 100.0)
    kwargs.setdefault("hold_seconds", 1.0)
    clock = kwargs.pop("clock", FakeClock())
    return degrade.OverloadController(clock=clock, **kwargs), clock


def signals(qps=0.0, inflight=0, error_rate=0.0):
    return degrade.LoadSignals(qps=qps, inflight=inflight,
                               error_rate=error_rate)


class TestRung:
    def test_exit_must_be_below_enter(self):
        with pytest.raises(ValueError):
            degrade.Rung(degrade.TRUNCATE, enter=1.0, exit=1.0)

    def test_ladder_must_be_contiguous(self):
        with pytest.raises(ValueError):
            degrade.OverloadController(
                100.0,
                ladder=(degrade.Rung(degrade.TRUNCATE, 1.5, 1.0),),
            )


class TestEscalation:
    def test_normal_below_first_threshold(self):
        ctrl, _ = make_controller()
        assert ctrl.update(signals(qps=99.0)) == degrade.NORMAL

    def test_each_rung_has_a_threshold(self):
        # DEFAULT_LADDER: 1.0 / 1.5 / 2.5 / 4.0 x capacity.
        ctrl, _ = make_controller()
        assert ctrl.update(signals(qps=100.0)) == degrade.SHED_SELFCHECK
        assert ctrl.update(signals(qps=150.0)) == degrade.TRUNCATE
        assert ctrl.update(signals(qps=250.0)) == degrade.SERVFAIL_SHED
        assert ctrl.update(signals(qps=400.0)) == degrade.DROP

    def test_escalation_jumps_straight_to_the_justified_rung(self):
        # Overload is *now*: no laddering up through intermediate levels.
        ctrl, _ = make_controller()
        assert ctrl.update(signals(qps=500.0)) == degrade.DROP
        assert ctrl.transitions == {"NORMAL->DROP": 1}
        assert ctrl.escalations == 1

    def test_pressure_is_the_worst_signal(self):
        ctrl, _ = make_controller(inflight_capacity=10)
        # qps is calm but inflight is 4x capacity: inflight wins.
        assert ctrl.compute_pressure(signals(qps=10.0, inflight=40)) == 4.0

    def test_error_rate_is_a_signal(self):
        ctrl, _ = make_controller(error_capacity=0.5)
        # 100% SERVFAIL = pressure 2.0: a crashing engine degrades
        # the plane even at low qps.
        assert ctrl.update(signals(error_rate=1.0)) == degrade.TRUNCATE


class TestHysteresis:
    def test_no_step_down_before_hold(self):
        ctrl, clock = make_controller(hold_seconds=1.0)
        ctrl.update(signals(qps=150.0))
        assert ctrl.level == degrade.TRUNCATE
        clock.advance(0.5)
        assert ctrl.update(signals(qps=0.0)) == degrade.TRUNCATE

    def test_step_down_one_rung_after_hold(self):
        ctrl, clock = make_controller(hold_seconds=1.0)
        ctrl.update(signals(qps=150.0))
        ctrl.update(signals(qps=0.0))  # hysteresis clock starts
        clock.advance(1.0)
        assert ctrl.update(signals(qps=0.0)) == degrade.SHED_SELFCHECK
        clock.advance(1.0)
        assert ctrl.update(signals(qps=0.0)) == degrade.NORMAL
        assert ctrl.de_escalations == 2

    def test_pressure_spike_resets_the_hold(self):
        ctrl, clock = make_controller(hold_seconds=1.0)
        ctrl.update(signals(qps=150.0))
        ctrl.update(signals(qps=0.0))
        clock.advance(0.9)
        # TRUNCATE's exit is 1.0 x capacity: 120 qps is above it, so the
        # 0.9s of quiet is forgotten.
        ctrl.update(signals(qps=120.0))
        clock.advance(0.9)
        # The hold restarted at the spike: 0.9s quiet is not 1.0s.
        assert ctrl.update(signals(qps=0.0)) == degrade.TRUNCATE
        # 1.1 not 1.0: the accumulated clock is binary floating point and
        # (0.9 + 0.9 + 1.0) - 1.8 falls a hair short of 1.0.
        clock.advance(1.1)
        assert ctrl.update(signals(qps=0.0)) == degrade.SHED_SELFCHECK

    def test_exit_below_enter_means_no_flapping_at_the_threshold(self):
        ctrl, clock = make_controller(hold_seconds=1.0)
        ctrl.update(signals(qps=150.0))  # enter TRUNCATE at 1.5x
        for _ in range(10):
            # Sitting between exit (1.0x) and enter (1.5x): stays put.
            clock.advance(5.0)
            assert ctrl.update(signals(qps=120.0)) == degrade.TRUNCATE


class TestTick:
    def test_tick_is_rate_limited(self):
        ctrl, clock = make_controller(interval=0.25)

        class M:
            @staticmethod
            def qps():
                return 500.0

            @staticmethod
            def recent_error_rate():
                return 0.0

        clock.advance(0.25)
        assert ctrl.tick(M, 0) == degrade.DROP
        # Within the interval the (now calm) metrics are not even read.
        M.qps = staticmethod(lambda: 0.0)
        assert ctrl.tick(M, 0) == degrade.DROP

    def test_should_shed_is_deterministic_per_client(self):
        ctrl, _ = make_controller()
        clients = [f"192.0.2.{i}" for i in range(64)]
        first = [ctrl.should_shed(c) for c in clients]
        assert first == [ctrl.should_shed(c) for c in clients]
        shed = sum(first)
        # ~SHED_FRACTION of clients shed; crucially not all, not none.
        assert 0 < shed < len(clients)


def pinned_server(level, **kwargs):
    """A server whose controller is pinned at ``level`` (the tick is
    disabled by a huge interval, so handle_packet sees exactly it)."""
    clock = FakeClock()
    ctrl = degrade.OverloadController(100.0, interval=1e9, clock=clock)
    ctrl.level = level
    return ZoneServer(evaluation_zone(), degrade=ctrl,
                      selfcheck_every=kwargs.pop("selfcheck_every", 0),
                      **kwargs)


def query_wire(text="www.example.com.", qtype=RRType.A, txid=0x7777):
    return build_query(txid, Query(DnsName.from_text(text), qtype))


class TestServingLadder:
    def test_truncate_sets_tc_on_udp(self):
        server = pinned_server(degrade.TRUNCATE)
        reply = server.handle_packet(query_wire(), "198.51.100.1", "udp")
        txid, response = parse_response(reply)
        assert txid == 0x7777
        assert response.tc is True  # RFC 1035 4.2.1: retry over TCP
        assert response.rcode is RCode.NOERROR
        assert response.answer == ()
        assert server.metrics.truncated == 1

    def test_truncate_leaves_tcp_untouched(self):
        # TCP has no 512-byte ceiling and its own back-pressure: full
        # answers keep flowing there — that is where TC sends clients.
        server = pinned_server(degrade.TRUNCATE)
        reply = server.handle_packet(query_wire(), "198.51.100.1", "tcp")
        _, response = parse_response(reply)
        assert response.tc is False
        assert response.answer  # resolved for real
        assert server.metrics.truncated == 0

    def test_servfail_shed_is_a_header_only_reply(self):
        # The shed reply is the cheapest wire-legal SERVFAIL: 12 header
        # bytes, question not even echoed (qdcount=0), so unpack the raw
        # header instead of parse_response (which requires one question).
        server = pinned_server(degrade.SERVFAIL_SHED)
        shed_client = next(
            c for c in (f"198.51.100.{i}" for i in range(256))
            if server.degrade.should_shed(c)
        )
        reply = server.handle_packet(query_wire(), shed_client, "udp")
        assert len(reply) == 12
        txid, flags, qd, an, ns, ar = struct.unpack("!HHHHHH", reply)
        assert txid == 0x7777
        assert flags & 0x8000  # QR: it is a response
        assert flags & 0xF == int(RCode.SERVFAIL)
        assert (qd, an, ns, ar) == (0, 0, 0, 0)
        assert server.metrics.shed_servfail == 1

    def test_unshed_client_still_truncated_not_servfailed(self):
        server = pinned_server(degrade.SERVFAIL_SHED)
        lucky = next(
            c for c in (f"198.51.100.{i}" for i in range(256))
            if not server.degrade.should_shed(c)
        )
        reply = server.handle_packet(query_wire(), lucky, "udp")
        _, response = parse_response(reply)
        assert response.rcode is RCode.NOERROR
        assert response.tc is True

    def test_drop_answers_nothing_and_counts(self):
        server = pinned_server(degrade.DROP)
        assert server.handle_packet(query_wire(), "198.51.100.1") == b""
        assert server.metrics.dropped_overload == 1

    def test_shed_selfcheck_suspends_sampling_only(self):
        server = pinned_server(degrade.SHED_SELFCHECK, selfcheck_every=1)
        reply = server.handle_packet(query_wire(), "198.51.100.1")
        _, response = parse_response(reply)
        assert response.answer  # client-visible behaviour untouched
        assert server.metrics.selfcheck_suspended == 1
        assert server.selfcheck.pending == 0  # nothing sampled

    def test_every_rung_conserves_the_ledger(self):
        for level in (degrade.NORMAL, degrade.SHED_SELFCHECK,
                      degrade.TRUNCATE, degrade.SERVFAIL_SHED, degrade.DROP):
            server = pinned_server(level)
            for i in range(8):
                server.handle_packet(query_wire(), f"198.51.100.{i}")
            ledger = server.metrics.conservation()
            assert ledger["conserved"], (level, ledger)

    def test_transitions_surface_on_status(self):
        server = pinned_server(degrade.NORMAL)
        server.degrade.update(signals(qps=500.0))
        status = server.status()
        assert status["degrade"]["level_name"] == "DROP"
        assert status["degrade"]["transitions"] == {"NORMAL->DROP": 1}

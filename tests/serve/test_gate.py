"""The verify-then-publish gate: VERIFIED swaps, everything else holds."""

import pytest

from repro.dns.zonefile import parse_zone_text
from repro.resilience import verdicts
from repro.serve import PublishGate, build_snapshot
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

#: Adding a wildcard with an MX triggers v2.0's extraneous-glue bug
#: (Table 2), so the same delta is benign for `verified` and a BUG for
#: v2.0 — exactly the property the gate must distinguish.
BUGGY_DELTA_TEXT = MINIMAL_ZONE_TEXT + (
    "*.wild IN A 192.0.2.20\n"
    "*.wild IN MX 10 ns1.example.com.\n"
)

BENIGN_DELTA_TEXT = MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.77")


def make_gate(version="verified"):
    zone = parse_zone_text(MINIMAL_ZONE_TEXT)
    return PublishGate(build_snapshot(zone, version))


class TestPublish:
    def test_benign_delta_publishes(self):
        gate = make_gate()
        before = gate.snapshot
        result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        assert result.accepted
        assert result.verdict == verdicts.VERIFIED
        assert gate.snapshot is not before
        assert gate.snapshot.sequence == before.sequence + 1
        assert gate.snapshot.digest == result.snapshot_digest != before.digest
        assert gate.publishes == 1 and gate.holds == 0
        assert gate.alarm is None

    def test_published_zone_serves_new_rdata(self):
        from repro.dns.message import Query
        from repro.dns.name import DnsName
        from repro.dns.rtypes import RRType

        gate = make_gate()
        gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        response = gate.snapshot.resolve(
            Query(DnsName.from_text("www.example.com."), RRType.A)
        )
        assert response.answer[0].rdata.to_text() == "192.0.2.77"

    def test_incremental_reuse_makes_second_submit_cheap(self):
        gate = make_gate()
        gate.bootstrap()  # warms the partition cache
        result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        # An rdata-only delta replays most partitions: far fewer solver
        # checks than the bootstrap run.
        assert result.accepted
        assert result.verify_seconds < 1.0


class TestHold:
    def test_bug_delta_held_old_snapshot_serves(self):
        gate = make_gate("v2.0")
        before = gate.snapshot
        result = gate.submit(parse_zone_text(BUGGY_DELTA_TEXT))
        assert not result.accepted
        assert result.verdict == verdicts.BUG
        assert result.bugs > 0
        # The serving snapshot did not advance.
        assert gate.snapshot is before
        assert result.snapshot_digest == before.digest
        assert gate.holds == 1 and gate.publishes == 0

    def test_hold_latches_alarm_until_clean_publish(self):
        gate = make_gate("v2.0")
        gate.submit(parse_zone_text(BUGGY_DELTA_TEXT))
        assert gate.alarm is not None
        assert gate.alarm["verdict"] == verdicts.BUG
        # Pushing a fix (back to a clean zone) publishes and clears it.
        result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        assert result.accepted
        assert gate.alarm is None
        assert gate.snapshot.sequence == 1

    def test_same_delta_verdict_depends_on_version(self):
        # The delta is the property under check, per engine version.
        assert make_gate("verified").submit(
            parse_zone_text(BUGGY_DELTA_TEXT)).accepted
        assert not make_gate("v2.0").submit(
            parse_zone_text(BUGGY_DELTA_TEXT)).accepted

    def test_verifier_error_becomes_typed_hold(self):
        gate = make_gate()

        def boom(_zone):
            raise OSError("disk on fire")

        gate._verifier.diff_to = boom
        result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        assert not result.accepted
        assert result.verdict == verdicts.ERROR
        assert result.reason == verdicts.ERR_IO
        assert "disk on fire" in result.error
        assert gate.errors == 1


class TestConcurrency:
    def test_racing_submissions_serialize(self):
        # API publishes and the file reloader submit from different worker
        # threads; the gate's lock serializes them, so counters, sequence
        # and history stay consistent however the race lands.
        import threading

        gate = make_gate()
        gate.bootstrap()
        deltas = [
            parse_zone_text(MINIMAL_ZONE_TEXT.replace(
                "192.0.2.10", f"192.0.2.{50 + i}"))
            for i in range(4)
        ]
        threads = [threading.Thread(target=gate.submit, args=(delta,))
                   for delta in deltas]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gate.publishes + gate.holds == len(deltas)
        assert gate.snapshot.sequence == gate.publishes
        assert len(gate.history) == len(deltas) + 1  # + the bootstrap


class TestCoalescing:
    def test_superseded_submission_is_dropped_unverified(self):
        # Hold the gate lock so two coalescing submissions queue behind
        # an "in-flight verification"; only the newest content should
        # ever run the prover.
        import threading

        gate = make_gate()
        results = {}

        def submit(tag, text):
            results[tag] = gate.submit_coalescing(
                parse_zone_text(text), source=tag)

        with gate._lock:  # the pretend in-flight verification
            first = threading.Thread(
                target=submit,
                args=("stale", MINIMAL_ZONE_TEXT.replace(
                    "192.0.2.10", "192.0.2.51")))
            first.start()
            # Wait until the stale delta is actually queued before
            # superseding it, or the race could resolve either way.
            while gate._queued is None:
                pass
            second = threading.Thread(
                target=submit,
                args=("fresh", MINIMAL_ZONE_TEXT.replace(
                    "192.0.2.10", "192.0.2.52")))
            second.start()
            while gate.publishes_coalesced == 0:
                pass
        first.join()
        second.join()
        # Exactly one verification ran, for the newest content; the
        # superseded caller got None back.
        assert gate.publishes_coalesced == 1
        assert gate.publishes == 1
        coalesced = [tag for tag, result in results.items()
                     if result is None]
        assert len(coalesced) == 1
        winner = next(result for result in results.values()
                      if result is not None)
        assert winner.accepted

        from repro.dns.message import Query
        from repro.dns.name import DnsName
        from repro.dns.rtypes import RRType

        served = gate.snapshot.resolve(
            Query(DnsName.from_text("www.example.com."), RRType.A)
        )
        assert served.answer[0].rdata.to_text() in ("192.0.2.51",
                                                    "192.0.2.52")

    def test_uncontended_coalescing_submit_just_publishes(self):
        gate = make_gate()
        result = gate.submit_coalescing(parse_zone_text(BENIGN_DELTA_TEXT))
        assert result is not None and result.accepted
        assert gate.publishes_coalesced == 0


class TestBootstrap:
    def test_clean_bootstrap_no_swap_no_alarm(self):
        gate = make_gate()
        before = gate.snapshot
        result = gate.bootstrap()
        assert result.accepted
        assert gate.snapshot is before  # already serving; nothing to swap
        assert gate.publishes == 0
        assert gate.alarm is None

    def test_buggy_bootstrap_alarms_but_keeps_serving(self):
        # v2.0 on a wildcard-MX zone is unverifiable from the start.
        zone = parse_zone_text(BUGGY_DELTA_TEXT)
        gate = PublishGate(build_snapshot(zone, "v2.0"))
        result = gate.bootstrap()
        assert not result.accepted
        assert gate.alarm is not None and gate.alarm["bootstrap"]


class TestHistory:
    def test_history_records_every_submission(self):
        gate = make_gate()
        gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        gate.submit(parse_zone_text(MINIMAL_ZONE_TEXT))
        assert len(gate.history) == 2
        assert all(entry["verdict"] == verdicts.VERIFIED
                   for entry in gate.history)

    def test_health_payload(self):
        gate = make_gate("v2.0")
        gate.submit(parse_zone_text(BUGGY_DELTA_TEXT))
        health = gate.health()
        assert health["holds"] == 1
        assert health["last_verdict"] == verdicts.BUG
        assert health["alarm"]["bugs"] > 0
        assert health["serving_digest"] == gate.snapshot.digest

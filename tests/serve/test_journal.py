"""The crash-safe publish journal: append/replay, torn tails, recovery.

The invariant under test: the journal head is an *upper bound* on the
serving state (journal-before-swap), and everything in the journal was
VERIFIED first. The SIGKILL test kills a real child process mid-lifecycle
and asserts the restart is bit-identical to never having crashed —
including when the kill (simulated by the ``serve.journal.write`` fault)
tears the final record in half.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.dns.zonefile import parse_zone_text, zone_to_text
from repro.incremental.digest import zone_digest
from repro.resilience import faults
from repro.resilience.faults import FaultPlan
from repro.serve import (
    JournalError,
    JournalRecord,
    PublishGate,
    PublishJournal,
    RecoveryError,
    ZoneServer,
    build_snapshot,
)
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

BENIGN_DELTA_TEXT = MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.99")


def record(sequence=0, digest="d" * 16, verdict="VERIFIED",
           source="publish"):
    return JournalRecord(sequence=sequence, digest=digest,
                         verdict=verdict, source=source, at=1.5)


class TestJournalFile:
    def test_fresh_journal_has_no_head(self, tmp_path):
        journal = PublishJournal(tmp_path / "publish.journal")
        assert journal.head() is None
        assert journal.replay() == []

    def test_append_replay_round_trip(self, tmp_path):
        journal = PublishJournal(tmp_path / "publish.journal")
        first = record(sequence=1, digest="aa")
        second = record(sequence=2, digest="bb", source="reload:zone")
        journal.append(first)
        journal.append(second)
        assert journal.replay() == [first, second]
        assert journal.head() == second
        assert journal.appends == 2

    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "publish.journal"
        journal = PublishJournal(path)
        journal.append(record(sequence=3))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["sequence"] == 3
        assert payload["verdict"] == "VERIFIED"

    def test_replay_skips_torn_tail_and_counts_it(self, tmp_path):
        path = tmp_path / "publish.journal"
        journal = PublishJournal(path)
        journal.append(record(sequence=1))
        with open(path, "a") as handle:
            handle.write('{"format": 1, "seq')  # crash mid-append
        assert journal.head() == record(sequence=1)
        assert journal.torn_records_skipped == 1

    def test_next_append_seals_a_torn_tail(self, tmp_path):
        # Without the seal, the new record would be glued onto the
        # garbage line and *both* would be lost on replay.
        path = tmp_path / "publish.journal"
        journal = PublishJournal(path)
        journal.append(record(sequence=1))
        with open(path, "a") as handle:
            handle.write('{"half')
        journal.append(record(sequence=2))
        replayed = journal.replay()
        assert [r.sequence for r in replayed] == [1, 2]
        assert journal.torn_records_skipped == 1


class TestTornWriteFault:
    def test_injected_torn_write_raises_and_replay_recovers(self, tmp_path):
        # `serve.journal.write` leaves exactly what SIGKILL mid-append
        # leaves: half a line, no newline, and an OSError in the caller.
        path = tmp_path / "publish.journal"
        journal = PublishJournal(path)
        journal.append(record(sequence=1))
        plan = FaultPlan.scripted({faults.SITE_SERVE_JOURNAL_WRITE: 1})
        with faults.active(plan):
            with pytest.raises(JournalError):
                journal.append(record(sequence=2))
        assert journal.append_failures == 1
        assert journal.head() == record(sequence=1)  # torn line skipped
        assert journal.torn_records_skipped == 1
        # The journal heals: the next append seals the torn tail.
        journal.append(record(sequence=2))
        assert journal.head() == record(sequence=2)


class TestGateJournal:
    def make_gate(self, tmp_path, version="verified"):
        zone = parse_zone_text(MINIMAL_ZONE_TEXT)
        journal = PublishJournal(tmp_path / "publish.journal")
        return PublishGate(build_snapshot(zone, version), journal=journal)

    def test_publish_journals_before_swap(self, tmp_path):
        gate = self.make_gate(tmp_path)
        delta = parse_zone_text(BENIGN_DELTA_TEXT)
        result = gate.submit(delta)
        assert result.accepted
        head = gate.journal.head()
        assert head.sequence == 1
        assert head.digest == zone_digest(delta) == gate.snapshot.digest
        assert head.verdict == "VERIFIED"

    def test_held_delta_never_enters_the_journal(self, tmp_path):
        # Only VERIFIED zones are journaled: a BUG hold leaves no record.
        gate = self.make_gate(tmp_path, version="v2.0")
        buggy = parse_zone_text(
            MINIMAL_ZONE_TEXT
            + "*.wild IN A 192.0.2.20\n"
            + "*.wild IN MX 10 ns1.example.com.\n"
        )
        result = gate.submit(buggy)
        assert not result.accepted
        assert gate.journal.head() is None

    def test_journal_failure_holds_the_publish(self, tmp_path):
        # No durable record -> no swap: serving state must never run
        # ahead of the journal.
        gate = self.make_gate(tmp_path)
        before = gate.snapshot
        plan = FaultPlan.scripted({faults.SITE_SERVE_JOURNAL_WRITE: 1})
        with faults.active(plan):
            result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        assert not result.accepted
        assert gate.snapshot is before
        assert gate.journal_failures == 1
        assert gate.journal.head() is None

    def test_swap_fault_leaves_journal_legally_ahead(self, tmp_path):
        # Crash *between* append and swap: the record exists, the swap
        # never happened. That is the legal direction — head is an upper
        # bound on the serving state, recovery re-verifies from it.
        gate = self.make_gate(tmp_path)
        before = gate.snapshot
        plan = FaultPlan.scripted({faults.SITE_SERVE_SNAPSHOT_SWAP: 1})
        with faults.active(plan):
            result = gate.submit(parse_zone_text(BENIGN_DELTA_TEXT))
        assert not result.accepted
        assert gate.snapshot is before
        assert gate.journal.head().sequence == before.sequence + 1


class TestServerRecovery:
    def test_digest_match_adopts_journaled_sequence(self, tmp_path):
        # Boot zone == journal head: serve immediately at the journaled
        # sequence, as if the process had never died.
        zone = parse_zone_text(BENIGN_DELTA_TEXT)
        journal = PublishJournal(tmp_path / "publish.journal")
        journal.append(record(sequence=5, digest=zone_digest(zone)))
        server = ZoneServer(zone, journal=journal, status_port=None)
        assert server.recovered_sequence == 5
        assert server.snapshot.sequence == 5
        assert server.snapshot.digest == zone_digest(zone)

    def test_digest_mismatch_reverifies_on_start(self, tmp_path):
        # Boot zone != journal head: verification status unknown, so
        # start() re-verifies before binding a single socket, adopts a
        # sequence past the head, and journals the adoption.
        import asyncio

        zone = parse_zone_text(MINIMAL_ZONE_TEXT)
        journal = PublishJournal(tmp_path / "publish.journal")
        journal.append(record(sequence=3, digest="someone-else"))
        server = ZoneServer(zone, journal=journal, status_port=None)
        assert server.recovered_sequence is None  # not yet: start() does it

        async def run():
            await server.start()
            await server.stop()

        asyncio.run(run())
        assert server.recovered_sequence == 4
        head = server.journal.head()
        assert head.sequence == 4
        assert head.source == "recovery"
        assert head.digest == zone_digest(zone)

    def test_failed_reverification_refuses_to_serve(self, tmp_path):
        # Mismatched journal AND a failing re-verify (injected prover
        # crash): the server must not start.
        import asyncio

        zone = parse_zone_text(MINIMAL_ZONE_TEXT)
        journal = PublishJournal(tmp_path / "publish.journal")
        journal.append(record(sequence=3, digest="someone-else"))
        server = ZoneServer(zone, journal=journal, status_port=None)
        plan = FaultPlan.scripted({faults.SITE_SERVE_GATE_VERIFY: 1})
        with faults.active(plan):
            with pytest.raises(RecoveryError):
                asyncio.run(server.start())


CHILD_SCRIPT = textwrap.dedent("""
    import os, signal, sys
    from repro.dns.zonefile import parse_zone_text, zone_to_text
    from repro.resilience import faults
    from repro.serve import PublishGate, PublishJournal, build_snapshot
    from repro.serve.journal import JournalError, JournalRecord
    from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

    zone_path, journal_path, tear = sys.argv[1], sys.argv[2], sys.argv[3]
    gate = PublishGate(
        build_snapshot(parse_zone_text(MINIMAL_ZONE_TEXT), "verified"),
        journal=PublishJournal(journal_path),
    )
    delta = parse_zone_text(
        MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.99"))
    result = gate.submit(delta)
    assert result.accepted, result.verdict
    with open(zone_path, "w") as handle:
        handle.write(zone_to_text(gate.snapshot.zone))
    if tear == "torn":
        # A second publish dies mid-journal-append: half a record on
        # disk, exactly the shape SIGKILL mid-write leaves.
        plan = faults.FaultPlan.scripted(
            {faults.SITE_SERVE_JOURNAL_WRITE: 1})
        with faults.active(plan):
            try:
                gate.journal.append(JournalRecord(
                    sequence=2, digest="never-made-it",
                    verdict="VERIFIED", source="publish"))
            except JournalError:
                pass
    os.kill(os.getpid(), signal.SIGKILL)
""")


class TestSigkillRestart:
    @pytest.mark.parametrize("tear", ["clean", "torn"])
    def test_restart_after_sigkill_is_bit_identical(self, tmp_path, tear):
        zone_path = tmp_path / "zone.db"
        journal_path = tmp_path / "publish.journal"
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.run(
            [sys.executable, "-c", CHILD_SCRIPT,
             str(zone_path), str(journal_path), tear],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # The restart: boot from what the dead process left on disk.
        zone = parse_zone_text(zone_path.read_text())
        journal = PublishJournal(journal_path)
        server = ZoneServer(zone, journal=journal, status_port=None)
        # Digest match against the last *durable* record: the server
        # adopts sequence 1 and serves, bit-identical to no crash.
        assert server.recovered_sequence == 1
        assert server.snapshot.sequence == 1
        assert server.snapshot.digest == zone_digest(zone)
        assert server.snapshot.digest == journal.head().digest
        if tear == "torn":
            assert journal.torn_records_skipped == 1

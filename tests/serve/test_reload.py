"""Zone-file reloading into the publish gate: retry, breaker, holds."""

import os

from repro.dns.zonefile import parse_zone_text
from repro.resilience.supervise import RetryPolicy
from repro.serve import PublishGate, ZoneReloader, build_snapshot
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0)


def write_zone(path, text, mtime):
    path.write_text(text)
    os.utime(path, (mtime, mtime))


def make_reloader(tmp_path, version="verified", **kwargs):
    path = tmp_path / "prod.zone"
    write_zone(path, MINIMAL_ZONE_TEXT, 1000)
    zone = parse_zone_text(MINIMAL_ZONE_TEXT)
    gate = PublishGate(build_snapshot(zone, version))
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("sleep", lambda _s: None)
    return path, gate, ZoneReloader(path, gate, **kwargs)


class TestPoll:
    def test_unchanged_file_is_a_noop(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path)
        reloader.prime()
        assert reloader.poll_once() is None
        assert reloader.reloads == 0
        assert gate.publishes == 0

    def test_changed_file_verifies_and_publishes(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path)
        reloader.prime()
        write_zone(path, MINIMAL_ZONE_TEXT.replace("192.0.2.10",
                                                   "192.0.2.55"), 2000)
        result = reloader.poll_once()
        assert result is not None and result.accepted
        assert gate.snapshot.sequence == 1
        assert reloader.reloads == 1

    def test_buggy_delta_reloaded_but_held(self, tmp_path):
        # The reload succeeds (file read + parsed); the *gate* holds it.
        path, gate, reloader = make_reloader(tmp_path, version="v2.0")
        reloader.prime()
        write_zone(path, MINIMAL_ZONE_TEXT + "*.wild IN A 192.0.2.20\n"
                                             "*.wild IN MX 10 ns1.example.com.\n",
                   2000)
        result = reloader.poll_once()
        assert result is not None and not result.accepted
        assert gate.snapshot.sequence == 0  # old snapshot keeps serving
        assert reloader.failures == 0  # not the reloader's failure
        assert reloader.breaker.state == "closed"
        assert gate.alarm is not None

    def test_parse_failure_feeds_breaker(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path, max_failures=2)
        reloader.prime()
        for mtime in (2000, 3000):
            write_zone(path, "not a zone file $ORIGIN garbage\n", mtime)
            assert reloader.poll_once() is None
        assert reloader.failures == 2
        assert reloader.breaker.is_open
        assert "zone reload failed" in reloader.last_error
        # Open breaker: polls become no-ops.
        polls = reloader.polls
        assert reloader.poll_once() is None
        assert reloader.polls == polls

    def test_failed_reload_retried_next_poll(self, tmp_path):
        # A torn read (file changed but read garbage) must NOT mark the
        # change as seen: the next poll retries the same mtime/size and
        # picks up the healed file without waiting for another change.
        path, gate, reloader = make_reloader(tmp_path, max_failures=5)
        reloader.prime()
        healed = MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.77")
        # Torn snapshot: same size (and, below, same mtime) as the final
        # file, but unparsable — only an uncommitted identity makes the
        # healed version reloadable.
        write_zone(path, "x" * len(healed), 2000)
        assert reloader.poll_once() is None
        assert reloader.failures == 1
        write_zone(path, healed, 2000)  # writer finished: identical identity
        result = reloader.poll_once()
        assert result is not None and result.accepted
        assert gate.snapshot.sequence == 1

    def test_persistently_bad_file_keeps_feeding_breaker(self, tmp_path):
        # An unchanged-but-malformed file fails every poll (not just the
        # poll that first saw it), so persistence trips the breaker as the
        # failure model documents.
        path, gate, reloader = make_reloader(tmp_path, max_failures=3)
        reloader.prime()
        write_zone(path, "not a zone file $ORIGIN garbage\n", 2000)
        for expected in (1, 2, 3):
            assert reloader.poll_once() is None
            assert reloader.failures == expected
        assert reloader.breaker.is_open

    def test_missing_file_retries_then_fails(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path)
        reloader.prime()
        path.unlink()
        assert reloader.poll_once() is None
        assert reloader.failures == 1
        assert "stat failed" in reloader.last_error

    def test_success_after_failures_closes_breaker(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path, max_failures=3)
        reloader.prime()
        write_zone(path, "garbage {\n", 2000)
        reloader.poll_once()
        assert reloader.breaker.consecutive_failures == 1
        write_zone(path, MINIMAL_ZONE_TEXT.replace("192.0.2.10",
                                                   "192.0.2.66"), 3000)
        result = reloader.poll_once()
        assert result is not None and result.accepted
        assert reloader.breaker.consecutive_failures == 0

    def test_as_dict(self, tmp_path):
        path, gate, reloader = make_reloader(tmp_path)
        reloader.prime()
        info = reloader.as_dict()
        assert info["breaker"] == "closed"
        assert info["path"].endswith("prod.zone")

"""Differential self-checking of the live serving path."""

import pytest

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.serve import SelfChecker, build_snapshot
from repro.zonegen import evaluation_zone


def query(text, qtype=RRType.A):
    return Query(DnsName.from_text(text), qtype)


class TestSampling:
    def test_every_nth_query_sampled(self):
        checker = SelfChecker(every=3)
        for _ in range(9):
            checker.observe(query("www.example.com."))
        assert checker.pending == 3

    def test_buffer_bounded(self):
        checker = SelfChecker(every=1, capacity=4)
        for i in range(100):
            checker.observe(query(f"h{i}.example.com."))
        assert checker.pending == 4

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            SelfChecker(every=0)


class TestReplay:
    def test_verified_engine_clean(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "verified")
        for text in ("www.example.com.", "missing.example.com.",
                     "anything.wild.example.com."):
            checker.observe(query(text))
        report = checker.run(snapshot)
        assert report["divergences"] == 0
        assert report["spec_divergences"] == 0
        assert not checker.alarm
        assert checker.pending == 0  # buffer drained

    def test_buggy_engine_divergence_alarms(self):
        # v2.0 stuffs extraneous additional records into wildcard MX
        # answers (Table 2): replaying the sampled query against the
        # verified engine exposes it.
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "v2.0")
        checker.observe(query("anything.wild.example.com.", RRType.MX))
        report = checker.run(snapshot)
        assert report["divergences"] == 1
        assert checker.alarm
        assert "v2.0 diverges from verified" in checker.last_divergence

    def test_crash_counts_as_divergence(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "dev")
        checker.observe(query("ent.wild.example.com."))
        report = checker.run(snapshot)
        assert report["divergences"] == 1
        assert "crashed" in report["details"][0]

    def test_duplicate_samples_checked_once(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "verified")
        for _ in range(5):
            checker.observe(query("www.example.com."))
        report = checker.run(snapshot)
        assert report["queries"] == 1

    def test_reference_snapshot_cached_by_digest(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "v1.0")
        checker.observe(query("www.example.com."))
        checker.run(snapshot)
        first = checker._reference
        checker.observe(query("example.com."))
        checker.run(snapshot)
        assert checker._reference is first  # same zone: no rebuild

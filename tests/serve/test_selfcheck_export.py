"""The selfcheck -> campaign bridge: divergences export as corpus entries."""

from repro.campaign import RegressionStore
from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.serve import SelfChecker, build_snapshot
from repro.zonegen import evaluation_zone


def query(text, qtype=RRType.A):
    return Query(DnsName.from_text(text), qtype)


class TestExportDivergences:
    def test_clean_run_exports_nothing(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "verified")
        checker.observe(query("www.example.com."))
        checker.run(snapshot)
        assert checker.exportable == 0
        assert checker.export_divergences() == []

    def test_divergence_exports_structured_record(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "v2.0")
        checker.observe(query("anything.wild.example.com.", RRType.MX))
        checker.run(snapshot)
        assert checker.exportable >= 1
        records = checker.export_divergences()
        kinds = {r["kind"] for r in records}
        assert "engine-divergence" in kinds
        for record in records:
            assert record["version"] == "v2.0"
            assert record["query"]["qname"] == "anything.wild.example.com."
            assert record["query"]["qtype"] == int(RRType.MX)
            assert "example.com." in record["zone_text"]

    def test_crash_exports_record(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "dev")
        checker.observe(query("ent.wild.example.com."))
        checker.run(snapshot)
        assert any(r["kind"] == "serving-crash"
                   for r in checker.export_divergences())

    def test_export_drains_by_default(self):
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "v2.0")
        checker.observe(query("anything.wild.example.com.", RRType.MX))
        checker.run(snapshot)
        first = checker.export_divergences()
        assert first
        assert checker.export_divergences() == []
        # clear=False peeks without draining.
        checker.observe(query("other.wild.example.com.", RRType.MX))
        checker.run(snapshot)
        peeked = checker.export_divergences(clear=False)
        assert peeked == checker.export_divergences()

    def test_exported_records_ingest_into_store(self, tmp_path):
        """The full loop the campaign closes: a live divergence becomes a
        replayable regression corpus entry."""
        checker = SelfChecker(every=1)
        snapshot = build_snapshot(evaluation_zone(), "v2.0")
        checker.observe(query("anything.wild.example.com.", RRType.MX))
        checker.run(snapshot)
        store = RegressionStore(tmp_path)
        written = store.ingest(checker.export_divergences())
        assert len(written) == 1
        entry = store.get(written[0])
        assert entry.source == "selfcheck"
        assert entry.version == "v2.0"
        assert entry.queries  # the offending query rides along
        assert entry.zone().origin.to_text() == "example.com."

"""TCP transport: RFC 1035 4.2.2 framing, pipelining, disconnects.

All over asyncio loopback streams — no real network, no fixed ports.
"""

import asyncio
import struct

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.wire import build_query, parse_response
from repro.serve import ZoneServer
from repro.zonegen import evaluation_zone


def query_wire(text, qtype=RRType.A, txid=0x1234):
    return build_query(txid, Query(DnsName.from_text(text), qtype))


def frame(wire):
    return struct.pack("!H", len(wire)) + wire


async def read_framed(reader, timeout=5.0):
    header = await asyncio.wait_for(reader.readexactly(2), timeout)
    (length,) = struct.unpack("!H", header)
    return await asyncio.wait_for(reader.readexactly(length), timeout)


async def wait_for_metric(read, want, timeout=5.0):
    """Poll a metric until it reaches ``want`` (the server notices a
    disconnect asynchronously)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while read() < want:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"metric never reached {want}: {read()}")
        await asyncio.sleep(0.01)


def with_server(run, **kwargs):
    kwargs.setdefault("status_port", None)

    async def main():
        server = ZoneServer(evaluation_zone(), **kwargs)
        await server.start()
        try:
            return await run(server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestFraming:
    def test_single_query_two_byte_length_prefix(self):
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(frame(query_wire("www.example.com.")))
            await writer.drain()
            header = await asyncio.wait_for(reader.readexactly(2), 5.0)
            (length,) = struct.unpack("!H", header)
            payload = await asyncio.wait_for(reader.readexactly(length), 5.0)
            assert len(payload) == length  # prefix matches the message
            txid, response = parse_response(payload)
            assert txid == 0x1234
            assert response.rcode is RCode.NOERROR
            assert server.metrics.queries_tcp == 1
            assert server.metrics.tcp_connections == 1
            writer.close()
            await writer.wait_closed()

        with_server(run)

    def test_message_split_across_writes(self):
        # Framing must reassemble a message that arrives byte-dribbled.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            framed = frame(query_wire("www.example.com."))
            for i in range(len(framed)):
                writer.write(framed[i:i + 1])
                await writer.drain()
            reply = await read_framed(reader)
            _, response = parse_response(reply)
            assert response.rcode is RCode.NOERROR
            writer.close()
            await writer.wait_closed()

        with_server(run)


class TestPipelining:
    def test_many_queries_one_connection_ordered_replies(self):
        probes = [
            (0x0001, "www.example.com.", RCode.NOERROR),
            (0x0002, "missing.example.com.", RCode.NXDOMAIN),
            (0x0003, "anything.wild.example.com.", RCode.NOERROR),
            (0x0004, "example.com.", RCode.NOERROR),
        ]

        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            # All four frames in one write, before reading anything.
            writer.write(b"".join(
                frame(query_wire(name, txid=txid))
                for txid, name, _ in probes
            ))
            await writer.drain()
            for want_txid, _, want_rcode in probes:
                reply = await read_framed(reader)
                txid, response = parse_response(reply)
                assert txid == want_txid
                assert response.rcode is want_rcode
            writer.close()
            await writer.wait_closed()
            assert server.metrics.queries_tcp == len(probes)
            assert server.metrics.tcp_connections == 1

        with_server(run)


class TestDisconnects:
    def test_mid_message_disconnect_counted(self):
        # Length prefix promises 64 bytes; the client hangs up after 10.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(struct.pack("!H", 64) + b"\x00" * 10)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await wait_for_metric(
                lambda: server.metrics.tcp_disconnects, 1
            )
            assert server.metrics.queries_tcp == 0  # never reached the path

        with_server(run)

    def test_clean_eof_between_messages_not_a_disconnect(self):
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(frame(query_wire("www.example.com.")))
            await writer.drain()
            await read_framed(reader)
            writer.close()  # EOF exactly on a frame boundary
            await writer.wait_closed()
            await wait_for_metric(
                lambda: server.metrics.tcp_connections, 1
            )
            await asyncio.sleep(0.05)  # give the handler time to exit
            assert server.metrics.tcp_disconnects == 0

        with_server(run)

    def test_mid_header_disconnect_treated_as_eof(self):
        # One byte of the two-byte length prefix, then hangup: the peer
        # never committed to a message, so nothing is counted.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"\x00")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await wait_for_metric(
                lambda: server.metrics.tcp_connections, 1
            )
            await asyncio.sleep(0.05)
            assert server.metrics.tcp_disconnects == 0

        with_server(run)


class TestIdleDeadline:
    def test_idle_connection_closed_and_counted(self):
        # The slowloris guard: a connection that never sends a frame is
        # closed at the deadline, not held open forever.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            data = await asyncio.wait_for(reader.read(), 5.0)
            assert data == b""  # server hung up on us
            await wait_for_metric(
                lambda: server.metrics.tcp_idle_timeouts, 1
            )
            writer.close()
            await writer.wait_closed()

        with_server(run, tcp_idle_timeout=0.1)

    def test_trickled_header_times_out_too(self):
        # One byte of the length prefix, then silence: the deadline
        # covers a partial frame, not just a silent socket.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"\x00")
            await writer.drain()
            assert await asyncio.wait_for(reader.read(), 5.0) == b""
            await wait_for_metric(
                lambda: server.metrics.tcp_idle_timeouts, 1
            )
            writer.close()
            await writer.wait_closed()

        with_server(run, tcp_idle_timeout=0.1)

    def test_active_connection_not_penalized(self):
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(frame(query_wire("www.example.com.")))
            await writer.drain()
            reply = await read_framed(reader)
            _, response = parse_response(reply)
            assert response.rcode is RCode.NOERROR
            writer.close()
            await writer.wait_closed()
            assert server.metrics.tcp_idle_timeouts == 0

        with_server(run, tcp_idle_timeout=0.5)


class TestTcpDrops:
    def test_rate_limited_connection_closed(self):
        # burst = 2*rate = 2 tokens: the third pipelined query trips the
        # limiter, whose TCP analogue is closing the connection.
        async def run(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            wire = query_wire("www.example.com.")
            writer.write(frame(wire) * 3)
            await writer.drain()
            await read_framed(reader)
            await read_framed(reader)
            leftover = await asyncio.wait_for(reader.read(), 5.0)
            assert leftover == b""  # server closed instead of replying
            writer.close()
            await writer.wait_closed()
            assert server.metrics.dropped_ratelimit == 1

        with_server(run, rate_limit=1.0)

"""ZoneServer over real asyncio loopback UDP, plus the status channel."""

import asyncio
import json
import struct

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.dns.wire import build_query, parse_response
from repro.dns.zonefile import parse_zone_text
from repro.serve import ZoneServer
from repro.zonegen import evaluation_zone
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT


def query_wire(text, qtype=RRType.A, txid=0x1234):
    return build_query(txid, Query(DnsName.from_text(text), qtype))


class _Client(asyncio.DatagramProtocol):
    def __init__(self):
        self.transport = None
        self.replies = asyncio.Queue()

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.replies.put_nowait(data)


async def udp_query(server, wire, timeout=5.0):
    loop = asyncio.get_running_loop()
    transport, proto = await loop.create_datagram_endpoint(
        _Client, remote_addr=(server.host, server.port)
    )
    try:
        transport.sendto(wire)
        return await asyncio.wait_for(proto.replies.get(), timeout)
    finally:
        transport.close()


def with_server(run, **kwargs):
    """Start a ZoneServer on loopback, run the async callback, stop."""
    kwargs.setdefault("status_port", None)

    async def main():
        server = ZoneServer(evaluation_zone(), **kwargs)
        await server.start()
        try:
            return await run(server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestUdpQueries:
    def test_positive_answer(self):
        async def run(server):
            reply = await udp_query(server, query_wire("www.example.com."))
            txid, response = parse_response(reply)
            assert txid == 0x1234
            assert response.rcode is RCode.NOERROR
            assert response.answer
            assert server.metrics.queries_udp == 1
            assert server.metrics.noerror == 1

        with_server(run)

    def test_nxdomain(self):
        async def run(server):
            reply = await udp_query(server, query_wire("missing.example.com."))
            _, response = parse_response(reply)
            assert response.rcode is RCode.NXDOMAIN
            assert server.metrics.nxdomain == 1

        with_server(run)

    def test_wildcard_with_unknown_labels(self):
        async def run(server):
            reply = await udp_query(
                server, query_wire("a.b.wild.example.com.")
            )
            _, response = parse_response(reply)
            assert response.rcode is RCode.NOERROR
            assert response.answer[0].rname == DnsName.from_text(
                "a.b.wild.example.com."
            )

        with_server(run)

    def test_formerr_on_truncated_qname(self):
        # 12 header bytes + a label-length byte promising more than is
        # there: parseable header, unparseable question -> FORMERR.
        async def run(server):
            wire = query_wire("www.example.com.", txid=0xABCD)[:14]
            reply = await udp_query(server, wire)
            txid, flags = struct.unpack("!HH", reply[:4])
            assert txid == 0xABCD
            assert flags & 0x8000  # QR: it is a response
            assert flags & 0xF == int(RCode.FORMERR)
            assert server.metrics.formerr == 1

        with_server(run)

    def test_response_packet_dropped_not_reflected(self):
        # A datagram with QR=1 (e.g. another server's reply, spoofed to
        # come from us) must be dropped, not answered with FORMERR — an
        # error reply also has QR set, so answering would let a single
        # spoofed packet start an infinite reflection loop (RFC 1035 7.1).
        async def run(server):
            transport, proto = await asyncio.get_running_loop(
            ).create_datagram_endpoint(
                _Client, remote_addr=(server.host, server.port)
            )
            try:
                spoofed = bytearray(query_wire("www.example.com."))
                spoofed[2] |= 0x80  # QR: this is a response
                transport.sendto(bytes(spoofed))
                # No reply should come; a follow-up valid query still works.
                transport.sendto(query_wire("www.example.com."))
                reply = await asyncio.wait_for(proto.replies.get(), 5.0)
                _, response = parse_response(reply)
                assert response.rcode is RCode.NOERROR
                assert proto.replies.empty()
            finally:
                transport.close()
            assert server.metrics.dropped_malformed == 1
            assert server.metrics.formerr == 0

        with_server(run)

    def test_own_reply_not_reanswered(self):
        # The degenerate loop case: feed the server one of its own
        # replies. handle_packet must return nothing.
        server = ZoneServer(evaluation_zone())
        reply = server.handle_packet(query_wire("www.example.com."),
                                     "192.0.2.1")
        assert reply
        assert server.handle_packet(reply, "192.0.2.1") == b""
        assert server.metrics.dropped_malformed == 1
        assert server.metrics.formerr == 0

    def test_sub_header_datagram_dropped_silently(self):
        async def run(server):
            transport, proto = await asyncio.get_running_loop(
            ).create_datagram_endpoint(
                _Client, remote_addr=(server.host, server.port)
            )
            try:
                transport.sendto(b"\x00\x01\x02")
                # No reply should come; a follow-up valid query still works.
                transport.sendto(query_wire("www.example.com."))
                reply = await asyncio.wait_for(proto.replies.get(), 5.0)
                _, response = parse_response(reply)
                assert response.rcode is RCode.NOERROR
            finally:
                transport.close()
            assert server.metrics.dropped_malformed == 1

        with_server(run)


class TestRateLimit:
    def test_over_limit_datagrams_dropped(self):
        # rate 1 qps, burst 2: the third back-to-back packet is dropped.
        server = ZoneServer(evaluation_zone(), rate_limit=1.0)
        wire = query_wire("www.example.com.")
        assert server.handle_packet(wire, "192.0.2.1")
        assert server.handle_packet(wire, "192.0.2.1")
        assert server.handle_packet(wire, "192.0.2.1") == b""
        assert server.metrics.dropped_ratelimit == 1
        # A different client has its own bucket.
        assert server.handle_packet(wire, "192.0.2.2")


class TestStatusChannel:
    def test_status_json_over_tcp(self):
        async def run(server):
            await udp_query(server, query_wire("www.example.com."))
            reader, writer = await asyncio.open_connection(
                server.host, server.status_port
            )
            line = await asyncio.wait_for(reader.readline(), 5.0)
            writer.close()
            await writer.wait_closed()
            status = json.loads(line)
            assert status["version"] == "verified"
            assert status["snapshot"]["sequence"] == 0
            assert status["snapshot"]["digest"] == server.snapshot.digest
            assert status["metrics"]["queries_udp"] == 1
            assert status["gate"]["alarm"] is None

        with_server(run, status_port=0)


class TestHotSwap:
    def test_publish_during_query_burst_drops_nothing(self):
        # The acceptance-criterion scenario: a benign delta verifies and
        # swaps while loopback queries are in flight; every query gets an
        # answer and the snapshot sequence advances.
        zone = parse_zone_text(MINIMAL_ZONE_TEXT)
        delta = parse_zone_text(
            MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.99")
        )

        async def main():
            server = ZoneServer(zone, status_port=None)
            await server.start()
            try:
                server.gate.bootstrap()  # warm the partition cache
                before = server.snapshot.sequence

                async def pummel():
                    answered = 0
                    wire = query_wire("www.example.com.")
                    while server.snapshot.sequence == before:
                        reply = await udp_query(server, wire)
                        _, response = parse_response(reply)
                        assert response.rcode is RCode.NOERROR
                        answered += 1
                    return answered

                burst, result = await asyncio.gather(
                    pummel(), server.publish(delta)
                )
                assert result.accepted
                assert server.snapshot.sequence == before + 1
                assert burst > 0  # queries flowed during the gate check
                assert server.metrics.servfail == 0
                assert server.metrics.dropped_malformed == 0
                # The swapped snapshot serves the new rdata.
                reply = await udp_query(server, query_wire("www.example.com."))
                _, response = parse_response(reply)
                assert response.answer[0].rdata.to_text() == "192.0.2.99"
            finally:
                await server.stop()

        asyncio.run(main())

"""Serving snapshots and fresh-label query encoding."""

import pytest

from repro.dns.interner import LABEL_SPACING, LabelInterner
from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.serve.snapshot import (
    ResolveError,
    build_snapshot,
    encode_query_name,
)
from repro.zonegen import evaluation_zone, minimal_zone


def name(text):
    return DnsName.from_text(text)


class TestEncodeQueryName:
    def test_known_labels_use_interned_codes(self):
        interner = LabelInterner(["com", "example", "www"])
        codes, overlay = encode_query_name(interner, name("www.example.com."))
        assert codes == [
            interner.code("com"), interner.code("example"), interner.code("www")
        ]
        assert overlay == {}

    def test_distinct_unknown_labels_get_distinct_codes(self):
        # The old example mapped every unknown label to interner.max_code,
        # so a.b.example.com collapsed into x.x.example.com.
        interner = LabelInterner(["com", "example"])
        codes, overlay = encode_query_name(interner, name("a.b.example.com."))
        unknown = codes[2:]
        assert len(set(unknown)) == 2
        assert {overlay[c] for c in unknown} == {"a", "b"}

    def test_fresh_codes_order_consistent_with_labels(self):
        interner = LabelInterner(["com", "example", "mm"])
        codes, _ = encode_query_name(interner, name("aa.zz.example.com."))
        code_zz, code_aa = codes[2], codes[3]
        # aa < mm < zz byte-wise, so code(aa) < code(mm) < code(zz).
        assert code_aa < interner.code("mm") < code_zz
        # Both stay inside the decodable range and off interned codes.
        for code in (code_aa, code_zz):
            assert interner.min_code < code <= interner.max_code
            assert interner.decode(code) is not None

    def test_same_label_twice_shares_one_code(self):
        interner = LabelInterner(["com", "example"])
        codes, overlay = encode_query_name(interner, name("zz.zz.example.com."))
        assert codes[2] == codes[3]
        assert len(overlay) == 1

    def test_case_insensitive(self):
        interner = LabelInterner(["com", "example", "www"])
        codes, _ = encode_query_name(interner, name("WWW.Example.COM."))
        assert codes == [
            interner.code("com"), interner.code("example"), interner.code("www")
        ]

    def test_many_unknowns_in_one_gap_stay_in_gap(self):
        interner = LabelInterner(["com", "zz"])
        labels = [f"m{i:03d}" for i in range(50)]
        qname = DnsName(tuple(labels[:20]) + ("com",))
        codes, overlay = encode_query_name(interner, qname)
        fresh = codes[1:]
        assert len(set(fresh)) == 20
        # All land strictly between code("com") and code("zz").
        assert all(
            interner.code("com") < c < interner.code("zz") for c in fresh
        )
        # Gap arithmetic: same gap, contiguous mid-gap codes.
        assert max(fresh) - min(fresh) < LABEL_SPACING // 2


class TestServingSnapshot:
    def test_resolve_positive(self):
        snapshot = build_snapshot(evaluation_zone(), "verified")
        response = snapshot.resolve(Query(name("www.example.com."), RRType.A))
        assert response.rcode is RCode.NOERROR
        assert len(response.answer) == 1

    def test_resolve_nxdomain(self):
        snapshot = build_snapshot(evaluation_zone(), "verified")
        response = snapshot.resolve(Query(name("nope.example.com."), RRType.A))
        assert response.rcode is RCode.NXDOMAIN

    def test_wildcard_answer_echoes_query_name(self):
        # Multi-label wildcard synthesis: the answer's owner must be the
        # qname the client sent, including labels the zone never interned.
        snapshot = build_snapshot(evaluation_zone(), "verified")
        response = snapshot.resolve(
            Query(name("a.b.wild.example.com."), RRType.A)
        )
        assert response.rcode is RCode.NOERROR
        assert response.answer[0].rname == name("a.b.wild.example.com.")

    def test_buggy_engine_crash_raises_resolve_error(self):
        # The dev version crashes on ENT queries (Table 2).
        snapshot = build_snapshot(evaluation_zone(), "dev")
        with pytest.raises(ResolveError) as info:
            snapshot.resolve(Query(name("ent.wild.example.com."), RRType.A))
        assert info.value.crash is not None

    def test_digest_tracks_zone_content(self):
        s1 = build_snapshot(minimal_zone(), "verified")
        s2 = build_snapshot(evaluation_zone(), "verified")
        assert s1.digest != s2.digest
        assert build_snapshot(minimal_zone(), "verified").digest == s1.digest

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            build_snapshot(minimal_zone(), "v99.9")

    def test_describe(self):
        snapshot = build_snapshot(minimal_zone(), "verified", sequence=3)
        text = snapshot.describe()
        assert "#3" in text and "example.com." in text

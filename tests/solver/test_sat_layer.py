"""Targeted tests of the SAT layer: splitting, caching, budgets."""

from repro.solver import and_, bvar, eq, ge, ivar, le, ne, not_, or_
from repro.solver.sat import SatResult, TheoryCache, check_formulas


x, y = ivar("x"), ivar("y")


class TestSplitting:
    def test_pure_boolean_sat(self):
        p, q, r = bvar("p"), bvar("q"), bvar("r")
        result, model = check_formulas([or_(p, q), or_(not_(p), r), not_(q)])
        assert result is SatResult.SAT
        assert model["p"] is True and model["r"] is True and model["q"] is False

    def test_pure_boolean_unsat(self):
        p, q = bvar("p"), bvar("q")
        result, _ = check_formulas([or_(p, q), not_(p), not_(q)])
        assert result is SatResult.UNSAT

    def test_theory_prunes_disjuncts(self):
        # Only the x==7 disjunct is consistent with the facts.
        result, model = check_formulas(
            [or_(eq(x, 1), eq(x, 7), eq(x, 9)), ge(x, 5), le(x, 8)]
        )
        assert result is SatResult.SAT and model["x"] == 7

    def test_nested_cnf_like(self):
        clauses = [or_(eq(x, i), eq(y, i)) for i in range(4)]
        # x can cover at most one clause value; y another; 4 clauses over
        # two variables with all-different values is unsatisfiable when we
        # also demand x != y ... actually x can satisfy clause i only with
        # value i. Force x==0 and y==1: clauses 2 and 3 fail.
        result, _ = check_formulas(clauses + [le(x, 0), ge(x, 0), le(y, 1), ge(y, 1)])
        assert result is SatResult.UNSAT

    def test_complementary_atoms_fail_fast(self):
        atom = ge(x, 5)
        result, _ = check_formulas([atom, not_(atom)])
        assert result is SatResult.UNSAT


class TestCache:
    def test_cache_hit_counting(self):
        cache = TheoryCache()
        formulas = [ge(x, 0), le(x, 3), ne(x, 1)]
        check_formulas(formulas, cache)
        misses = cache.misses
        check_formulas(formulas, cache)
        assert cache.misses == misses
        assert cache.hits >= 1

    def test_cache_shared_across_different_formulas(self):
        cache = TheoryCache()
        check_formulas([ge(x, 0), le(x, 3)], cache)
        # Same atom set reached through a different formula structure.
        check_formulas([and_(ge(x, 0), le(x, 3))], cache)
        assert cache.hits >= 1


class TestBudget:
    def test_node_limit_reports_unknown(self):
        # A big grid of disjunctions with an unsatisfiable arithmetic core;
        # with a tiny node budget the search cannot finish.
        clauses = [or_(eq(x, i), eq(y, i)) for i in range(12)]
        # Unsat core that is NOT a structural complement pair (x<=99 vs
        # x>=100 would be caught for free during fact collection), so
        # refutation needs theory checks at the leaves — beyond the budget.
        clauses += [ge(x, 100), le(x, 50)]
        result, _ = check_formulas(clauses, node_limit=5)
        assert result is SatResult.UNKNOWN

    def test_structural_complements_refuted_for_free(self):
        # x<=99 and x>=100 are the same atom negated; the fact collector
        # refutes them with zero theory work even under a tiny budget.
        clauses = [or_(eq(x, i), eq(y, i)) for i in range(12)]
        clauses += [ge(x, 100), le(x, 99)]
        result, _ = check_formulas(clauses, node_limit=5)
        assert result is SatResult.UNSAT

"""Unit and property tests for the theory solver and the Solver facade."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.solver import (
    Solver,
    SolveResult,
    and_,
    bvar,
    eq,
    eval_expr,
    ge,
    gt,
    iadd,
    iconst,
    imul,
    isub,
    ivar,
    le,
    lt,
    ne,
    not_,
    or_,
)

x, y, z = ivar("x"), ivar("y"), ivar("z")


def check(*formulas):
    solver = Solver()
    solver.add(*formulas)
    return solver.check(), solver


class TestBasicSat:
    def test_trivial_sat(self):
        result, solver = check(le(x, 5))
        assert result is SolveResult.SAT
        assert solver.model().get_int("x") <= 5

    def test_trivial_unsat(self):
        result, _ = check(le(x, 5), ge(x, 6))
        assert result is SolveResult.UNSAT

    def test_equalities(self):
        result, solver = check(eq(x, 5), eq(y, iadd(x, 2)))
        assert result is SolveResult.SAT
        model = solver.model()
        assert model.get_int("x") == 5 and model.get_int("y") == 7

    def test_equality_conflict(self):
        result, _ = check(eq(x, 5), eq(x, 6))
        assert result is SolveResult.UNSAT

    def test_chained_inequalities(self):
        result, solver = check(lt(x, y), lt(y, z), ge(x, 0), le(z, 2))
        assert result is SolveResult.SAT
        m = solver.model()
        assert 0 <= m.get_int("x") < m.get_int("y") < m.get_int("z") <= 2

    def test_chained_inequalities_unsat(self):
        result, _ = check(lt(x, y), lt(y, z), ge(x, 0), le(z, 1))
        assert result is SolveResult.UNSAT

    def test_disequality_forces_gap(self):
        result, solver = check(ge(x, 0), le(x, 2), ne(x, 0), ne(x, 1))
        assert result is SolveResult.SAT
        assert solver.model().get_int("x") == 2

    def test_disequality_exhausts_domain(self):
        result, _ = check(ge(x, 0), le(x, 1), ne(x, 0), ne(x, 1))
        assert result is SolveResult.UNSAT

    def test_var_to_var_disequality(self):
        result, solver = check(eq(x, y), ne(x, y))
        assert result is SolveResult.UNSAT

    def test_coefficient_constraints(self):
        result, solver = check(eq(iadd(imul(2, x), imul(3, y)), 12), ge(x, 0), ge(y, 0))
        assert result is SolveResult.SAT
        m = solver.model()
        assert 2 * m.get_int("x") + 3 * m.get_int("y") == 12

    def test_parity_infeasible(self):
        # 2x == 7 folds to false at construction already.
        result, _ = check(eq(imul(2, x), 7))
        assert result is SolveResult.UNSAT


class TestBooleanStructure:
    def test_disjunction_sat(self):
        result, solver = check(or_(eq(x, 1), eq(x, 2)), ne(x, 1))
        assert result is SolveResult.SAT
        assert solver.model().get_int("x") == 2

    def test_disjunction_unsat(self):
        result, _ = check(or_(eq(x, 1), eq(x, 2)), ne(x, 1), ne(x, 2))
        assert result is SolveResult.UNSAT

    def test_bool_vars(self):
        p, q = bvar("p"), bvar("q")
        result, solver = check(or_(p, q), not_(p))
        assert result is SolveResult.SAT
        assert solver.model().get_bool("q") is True

    def test_bool_conflict(self):
        p = bvar("p")
        result, _ = check(p, not_(p))
        assert result is SolveResult.UNSAT

    def test_mixed_bool_and_arith(self):
        p = bvar("p")
        result, solver = check(or_(and_(p, eq(x, 1)), and_(not_(p), eq(x, 2))), ge(x, 2))
        assert result is SolveResult.SAT
        m = solver.model()
        assert m.get_bool("p") is False and m.get_int("x") == 2

    def test_nested_disjunctions(self):
        formula = and_(
            or_(eq(x, 1), eq(x, 2), eq(x, 3)),
            or_(eq(y, 10), eq(y, 20)),
            eq(iadd(x, y), 23),
        )
        result, solver = check(formula)
        assert result is SolveResult.SAT
        m = solver.model()
        assert m.get_int("x") == 3 and m.get_int("y") == 20


class TestIncremental:
    def test_push_pop(self):
        solver = Solver()
        solver.add(ge(x, 0))
        solver.push()
        solver.add(le(x, -1))
        assert solver.check() is SolveResult.UNSAT
        solver.pop()
        assert solver.check() is SolveResult.SAT

    def test_check_with_extra(self):
        solver = Solver()
        solver.add(ge(x, 0), le(x, 10))
        assert solver.check(eq(x, 5)) is SolveResult.SAT
        assert solver.check(eq(x, 50)) is SolveResult.UNSAT
        # Extra assumptions do not persist.
        assert solver.check() is SolveResult.SAT

    def test_entails(self):
        solver = Solver()
        solver.add(eq(x, 5))
        assert solver.entails(ge(x, 0))
        assert not solver.entails(ge(x, 6))

    def test_is_satisfiable(self):
        solver = Solver()
        solver.add(eq(x, 5))
        assert solver.is_satisfiable(le(x, 5))
        assert not solver.is_satisfiable(le(x, 4))

    def test_result_cache_returns_same(self):
        solver = Solver()
        solver.add(eq(x, 5))
        assert solver.check() is SolveResult.SAT
        checks = solver.num_checks
        assert solver.check() is SolveResult.SAT
        assert solver.num_checks == checks

    def test_model_requires_sat(self):
        solver = Solver()
        solver.add(le(x, 0), ge(x, 1))
        solver.check()
        try:
            solver.model()
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")


class TestLargeDomains:
    """Shapes matching the DNS encoding: spaced label codes with
    disequality sets (section 6.3)."""

    def test_label_code_gap_model(self):
        spacing = 1 << 16
        codes = [spacing * (i + 1) for i in range(5)]
        solver = Solver()
        solver.add(ge(x, 1), le(x, codes[-1] + spacing - 1))
        for code in codes:
            solver.add(ne(x, code))
        solver.add(gt(x, codes[1]), lt(x, codes[2]))
        assert solver.check() is SolveResult.SAT
        value = solver.model().get_int("x")
        assert codes[1] < value < codes[2]

    def test_many_vars_ordered(self):
        solver = Solver()
        variables = [ivar(f"n{i}") for i in range(10)]
        for a, b in zip(variables, variables[1:]):
            solver.add(lt(a, b))
        solver.add(ge(variables[0], 0), le(variables[-1], 9))
        assert solver.check() is SolveResult.SAT
        values = [solver.model().get_int(f"n{i}") for i in range(10)]
        assert values == sorted(values) and len(set(values)) == 10


# -- exhaustive cross-checking against brute force ---------------------------

atom_st = st.builds(
    lambda maker, cx, cy, c: maker(iadd(imul(cx, x), imul(cy, y)), c),
    st.sampled_from([le, lt, eq, ne, ge, gt]),
    st.integers(-2, 2),
    st.integers(-2, 2),
    st.integers(-4, 4),
)

literal_st = st.one_of(atom_st, st.builds(lambda n: bvar(f"b{n}"), st.integers(0, 1)))

clause_st = st.lists(literal_st, min_size=1, max_size=3).map(lambda ls: or_(*ls))

formula_st = st.lists(clause_st, min_size=1, max_size=5).map(lambda cs: and_(*cs))


def brute_force_sat(formula):
    for vx, vy in itertools.product(range(-6, 7), repeat=2):
        for b0, b1 in itertools.product([False, True], repeat=2):
            model = {"x": vx, "y": vy, "b0": b0, "b1": b1}
            if eval_expr(formula, model):
                return True
    return False


class TestAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(formula_st)
    def test_solver_agrees_with_enumeration(self, formula):
        # Restrict the solver to the same finite domain as the enumeration.
        box = and_(ge(x, -6), le(x, 6), ge(y, -6), le(y, 6))
        solver = Solver()
        solver.add(box, formula)
        result = solver.check()
        expected = brute_force_sat(and_(box, formula))
        if expected:
            assert result is SolveResult.SAT
            model = solver.model()
            filled = {
                name: model.as_dict().get(name, 0)
                for name in ("x", "y", "b0", "b1")
            }
            assert eval_expr(and_(box, formula), filled)
        else:
            assert result is SolveResult.UNSAT

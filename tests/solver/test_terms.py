"""Unit tests for the solver term language."""

import pytest
from hypothesis import given, strategies as st

from repro.solver.terms import (
    Atom,
    BoolLit,
    EQ,
    LE,
    NE,
    NonLinearError,
    and_,
    beq,
    bfalse,
    btrue,
    bvar,
    eq,
    eval_expr,
    free_vars,
    ge,
    gt,
    iadd,
    iconst,
    implies,
    imul,
    ineg,
    isub,
    ivar,
    le,
    lt,
    ne,
    not_,
    or_,
    substitute,
)

x, y, z = ivar("x"), ivar("y"), ivar("z")


class TestIntExpr:
    def test_const_folding(self):
        assert iadd(iconst(2), iconst(3)) == iconst(5)

    def test_add_collects_coefficients(self):
        expr = iadd(iadd(x, x), y)
        assert dict(expr.coeffs) == {"x": 2, "y": 1}

    def test_sub_cancels(self):
        assert isub(iadd(x, 3), x) == iconst(3)

    def test_mul_by_const(self):
        expr = imul(3, iadd(x, 1))
        assert dict(expr.coeffs) == {"x": 3}
        assert expr.const == 3

    def test_mul_nonlinear_rejected(self):
        with pytest.raises(NonLinearError):
            imul(x, y)

    def test_mul_zero(self):
        assert imul(0, iadd(x, y)) == iconst(0)

    def test_int_coercion(self):
        assert iadd(x, 5).const == 5

    def test_is_var(self):
        assert x.is_var and x.var_name == "x"
        assert not iadd(x, 1).is_var
        assert not imul(2, x).is_var

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            iconst(True)


class TestAtoms:
    def test_le_normal_form(self):
        atom = le(x, 5)
        assert isinstance(atom, Atom) and atom.kind == LE
        assert atom.expr == isub(x, 5)

    def test_lt_over_ints(self):
        # x < 5 over ints is x <= 4.
        assert lt(x, 5) == le(x, 4)

    def test_gt_ge_swap(self):
        assert gt(x, y) == lt(y, x)
        assert ge(x, y) == le(y, x)

    def test_constant_comparisons_fold(self):
        assert le(3, 5) == btrue()
        assert lt(5, 5) == bfalse()
        assert eq(4, 4) == btrue()
        assert ne(4, 4) == bfalse()

    def test_gcd_normalisation_le(self):
        # 2x <= 5 over ints is x <= 2.
        assert le(imul(2, x), 5) == le(x, 2)

    def test_gcd_normalisation_eq_infeasible(self):
        # 2x == 5 has no integer solution.
        assert eq(imul(2, x), 5) == bfalse()
        assert ne(imul(2, x), 5) == btrue()

    def test_eq_sign_canonical(self):
        assert eq(x, y) == eq(y, x)
        assert ne(x, y) == ne(y, x)


class TestBooleanStructure:
    def test_and_flattens_and_dedups(self):
        formula = and_(le(x, 1), and_(le(x, 1), le(y, 2)))
        assert formula == and_(le(x, 1), le(y, 2))

    def test_or_absorbing(self):
        assert or_(le(x, 1), btrue()) == btrue()
        assert and_(le(x, 1), bfalse()) == bfalse()

    def test_empty_connectives(self):
        assert and_() == btrue()
        assert or_() == bfalse()

    def test_complement_shortcut(self):
        p = bvar("p")
        assert and_(p, not_(p)) == bfalse()
        assert or_(p, not_(p)) == btrue()

    def test_atom_complement_shortcut(self):
        atom = le(x, 1)
        assert and_(atom, not_(atom)) == bfalse()

    def test_not_le_integral(self):
        # not(x <= 1) is x >= 2.
        assert not_(le(x, 1)) == ge(x, 2)

    def test_not_eq_is_ne(self):
        assert not_(eq(x, y)) == ne(x, y)
        assert not_(ne(x, y)) == eq(x, y)

    def test_double_negation(self):
        for formula in (le(x, 1), eq(x, 1), bvar("p"), and_(le(x, 1), bvar("p"))):
            assert not_(not_(formula)) == formula

    def test_implies(self):
        assert implies(bfalse(), bvar("p")) == btrue()

    def test_nnf_invariant(self):
        # Negating a conjunction produces a disjunction of negations.
        formula = not_(and_(le(x, 1), eq(y, 2)))
        assert formula == or_(ge(x, 2), ne(y, 2))


class TestSubstitutionEvaluation:
    def test_substitute_int(self):
        formula = le(iadd(x, y), 5)
        assert substitute(formula, {"x": iconst(3)}) == le(y, 2)

    def test_substitute_with_plain_int(self):
        assert substitute(le(x, 5), {"x": 7}) == bfalse()

    def test_substitute_bool(self):
        p = bvar("p")
        assert substitute(p, {"p": True}) == btrue()
        assert substitute(not_(p), {"p": True}) == bfalse()

    def test_substitute_renames(self):
        assert substitute(le(x, y), {"x": ivar("a")}) == le(ivar("a"), y)

    def test_eval(self):
        formula = and_(le(x, 5), ne(y, 0), bvar("p"))
        assert eval_expr(formula, {"x": 5, "y": 1, "p": True}) is True
        assert eval_expr(formula, {"x": 6, "y": 1, "p": True}) is False
        assert eval_expr(formula, {"x": 5, "y": 0, "p": True}) is False
        assert eval_expr(formula, {"x": 5, "y": 1, "p": False}) is False

    def test_free_vars(self):
        formula = and_(le(iadd(x, y), 5), bvar("p"))
        assert free_vars(formula) == {"x", "y", "p"}

    def test_beq(self):
        p, q = bvar("p"), bvar("q")
        formula = beq(p, q)
        assert eval_expr(formula, {"p": True, "q": True}) is True
        assert eval_expr(formula, {"p": True, "q": False}) is False


int_expr_st = st.builds(
    lambda c, cx, cy: IntExprHelper(c, cx, cy),
    st.integers(-20, 20),
    st.integers(-3, 3),
    st.integers(-3, 3),
)


class IntExprHelper:
    def __init__(self, c, cx, cy):
        self.expr = iadd(iadd(imul(cx, x), imul(cy, y)), c)
        self.fn = lambda vx, vy: cx * vx + cy * vy + c


class TestAlgebraicProperties:
    @given(int_expr_st, int_expr_st, st.integers(-50, 50), st.integers(-50, 50))
    def test_eval_homomorphism(self, a, b, vx, vy):
        model = {"x": vx, "y": vy}
        assert eval_expr(iadd(a.expr, b.expr), model) == a.fn(vx, vy) + b.fn(vx, vy)
        assert eval_expr(isub(a.expr, b.expr), model) == a.fn(vx, vy) - b.fn(vx, vy)

    @given(int_expr_st, int_expr_st, st.integers(-50, 50), st.integers(-50, 50))
    def test_comparison_semantics(self, a, b, vx, vy):
        model = {"x": vx, "y": vy}
        va, vb = a.fn(vx, vy), b.fn(vx, vy)
        assert eval_expr(le(a.expr, b.expr), model) == (va <= vb)
        assert eval_expr(lt(a.expr, b.expr), model) == (va < vb)
        assert eval_expr(eq(a.expr, b.expr), model) == (va == vb)
        assert eval_expr(ne(a.expr, b.expr), model) == (va != vb)

    @given(int_expr_st, int_expr_st, st.integers(-50, 50), st.integers(-50, 50))
    def test_negation_semantics(self, a, b, vx, vy):
        model = {"x": vx, "y": vy}
        for make in (le, lt, eq, ne):
            formula = make(a.expr, b.expr)
            assert eval_expr(not_(formula), model) == (not eval_expr(formula, model))

"""Direct tests of the LIA theory decision procedure internals."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import eq, ge, iadd, iconst, imul, isub, ivar, le, lt, ne
from repro.solver.terms import Atom
from repro.solver.theory import TheoryResult, check_conjunction


def atoms_of(*formulas):
    out = []
    for formula in formulas:
        assert isinstance(formula, Atom), formula
        out.append(formula)
    return out


x, y, z = ivar("x"), ivar("y"), ivar("z")


class TestConjunctionDecisions:
    def test_empty_sat(self):
        result, model = check_conjunction([])
        assert result is TheoryResult.SAT and model == {}

    def test_simple_bounds(self):
        result, model = check_conjunction(atoms_of(ge(x, 3), le(x, 3)))
        assert result is TheoryResult.SAT
        assert model["x"] == 3

    def test_gaussian_elimination_chain(self):
        result, model = check_conjunction(
            atoms_of(eq(x, 5), eq(y, iadd(x, 10)), eq(z, iadd(y, x)))
        )
        assert result is TheoryResult.SAT
        assert model["y"] == 15 and model["z"] == 20

    def test_equality_contradiction(self):
        result, _ = check_conjunction(atoms_of(eq(x, 1), eq(x, 2)))
        assert result is TheoryResult.UNSAT

    def test_interval_emptiness(self):
        result, _ = check_conjunction(atoms_of(ge(x, 10), le(x, 9)))
        assert result is TheoryResult.UNSAT

    def test_transitive_infeasibility(self):
        result, _ = check_conjunction(
            atoms_of(lt(x, y), lt(y, z), lt(z, x))
        )
        assert result is TheoryResult.UNSAT

    def test_disequality_search(self):
        atoms = atoms_of(ge(x, 0), le(x, 5), *[ne(x, k) for k in range(5)])
        result, model = check_conjunction(atoms)
        assert result is TheoryResult.SAT
        assert model["x"] == 5

    def test_disequality_exhaustion(self):
        atoms = atoms_of(ge(x, 0), le(x, 4), *[ne(x, k) for k in range(5)])
        result, _ = check_conjunction(atoms)
        assert result is TheoryResult.UNSAT

    def test_var_vs_var_disequality(self):
        result, model = check_conjunction(
            atoms_of(ge(x, 0), le(x, 1), ge(y, 0), le(y, 1), ne(x, y))
        )
        assert result is TheoryResult.SAT
        assert model["x"] != model["y"]

    def test_coefficient_equation(self):
        # 3x - 2y == 1 with both in [0, 10].
        result, model = check_conjunction(
            atoms_of(
                eq(isub(imul(3, x), imul(2, y)), 1),
                ge(x, 0), le(x, 10), ge(y, 0), le(y, 10),
            )
        )
        assert result is TheoryResult.SAT
        assert 3 * model["x"] - 2 * model["y"] == 1

    def test_large_spaced_domain(self):
        spacing = 1 << 16
        atoms = atoms_of(
            ge(x, 1),
            le(x, 6 * spacing),
            *[ne(x, k * spacing) for k in range(1, 6)],
            ge(x, 3 * spacing),
        )
        result, model = check_conjunction(atoms)
        assert result is TheoryResult.SAT
        assert model["x"] >= 3 * spacing and model["x"] % spacing != 0


class TestModelCompleteness:
    def test_unconstrained_vars_get_values(self):
        result, model = check_conjunction(atoms_of(eq(iadd(x, y), 10)))
        assert result is TheoryResult.SAT
        assert model["x"] + model["y"] == 10

    def test_eliminated_vars_back_substituted(self):
        result, model = check_conjunction(
            atoms_of(eq(x, y), eq(y, z), ge(z, 7), le(z, 7))
        )
        assert result is TheoryResult.SAT
        assert model["x"] == model["y"] == model["z"] == 7


@st.composite
def small_system(draw):
    n_atoms = draw(st.integers(1, 6))
    makers = [le, lt, eq, ne, ge]
    atoms = []
    for _ in range(n_atoms):
        maker = draw(st.sampled_from(makers))
        cx = draw(st.integers(-2, 2))
        cy = draw(st.integers(-2, 2))
        c = draw(st.integers(-5, 5))
        formula = maker(iadd(imul(cx, x), imul(cy, y)), c)
        if isinstance(formula, Atom):
            atoms.append(formula)
    # Box both variables so brute force is finite.
    for bound in (ge(x, -4), le(x, 4), ge(y, -4), le(y, 4)):
        atoms.append(bound)
    return atoms


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(small_system())
    def test_matches_enumeration(self, atoms):
        from repro.solver.terms import and_, eval_expr

        formula = and_(*atoms)
        expected = any(
            eval_expr(formula, {"x": vx, "y": vy})
            for vx in range(-4, 5)
            for vy in range(-4, 5)
        )
        result, model = check_conjunction(atoms)
        if expected:
            assert result is TheoryResult.SAT
            filled = {"x": model.get("x", 0), "y": model.get("y", 0)}
            assert eval_expr(formula, filled)
        else:
            assert result is TheoryResult.UNSAT

"""Tests for the section 6.3 Name-layer refinement experiment."""

import pytest

from repro.dns.name import DnsName
from repro.engine.gopy import nameops, rawname
from repro.engine.gopy.consts import EXACTMATCH, NOMATCH, PARTIALMATCH
from repro.spec.namespec import byte_encode, check_name_refinement


def name(text):
    return DnsName.from_text(text)


class TestByteEncoding:
    def test_simple(self):
        assert byte_encode(name("ab.cd.")) == [97, 98, 46, 99, 100]

    def test_single_label(self):
        assert byte_encode(name("x.")) == [120]


class TestCompareRawConcrete:
    """compare_raw runs natively; check it against the abstract semantics
    on concrete cases first."""

    def pair(self, a, b):
        return rawname.compare_raw(byte_encode(name(a)), byte_encode(name(b)))

    def test_exact(self):
        assert self.pair("www.example.com.", "www.example.com.") == EXACTMATCH

    def test_partial(self):
        assert self.pair("a.example.com.", "example.com.") == PARTIALMATCH

    def test_nomatch_sibling(self):
        assert self.pair("a.example.com.", "b.example.com.") == NOMATCH

    def test_nomatch_not_on_boundary(self):
        # The Figure 4 subtlety: byte suffix without a label boundary.
        assert self.pair("wwwexample.com.", "example.com.") == NOMATCH

    def test_nomatch_query_above_node(self):
        assert self.pair("com.", "example.com.") == NOMATCH

    def test_buggy_version_differs(self):
        raw = rawname.compare_raw_noboundary(
            byte_encode(name("wwwexample.com.")), byte_encode(name("example.com."))
        )
        assert raw == PARTIALMATCH  # the bug

    def test_agrees_with_name_match_concretely(self):
        labels = ["a", "b", "ab", "com", "net"]
        from repro.dns.interner import LabelInterner

        interner = LabelInterner(labels)
        import itertools

        for la, lb in itertools.product(labels, repeat=2):
            for lc in labels:
                n1 = DnsName((la, lb))
                n2 = DnsName((lc,))
                raw = rawname.compare_raw(byte_encode(n1), byte_encode(n2))
                abstract = nameops.name_match(
                    list(interner.encode_name(n1)), list(interner.encode_name(n2))
                )
                assert raw == abstract, (n1, n2)


class TestSymbolicRefinement:
    def test_correct_implementation_verifies(self):
        report = check_name_refinement(
            name("ab.cd."), extra_labels=["x", "yz"], max_labels=2, max_label_len=2
        )
        assert report.verified
        assert report.shapes_checked == 6

    def test_buggy_implementation_fails_with_counterexample(self):
        report = check_name_refinement(
            name("ab.cd."),
            extra_labels=["x", "yz"],
            max_labels=3,
            max_label_len=3,
            raw_function="compare_raw_noboundary",
        )
        assert not report.verified
        # The failing shape must involve a 3-byte label ending in 'ab'.
        assert any("(3, 2)" in failure for failure in report.failures)

    def test_single_label_node(self):
        report = check_name_refinement(
            name("ab."), extra_labels=["q"], max_labels=2, max_label_len=2
        )
        assert report.verified

"""Unit tests for the top-level specification and the reference resolver.

The executable spec (GoPy) and the reference resolver (plain Python) are
independent implementations of the same RFC semantics; these tests check
each against hand-computed expectations, then against each other over the
corpus and random zones.
"""

import pytest

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RCode, RRType
from repro.engine.control import build_flat_zone
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response as GoResponse
from repro.spec import reference_resolve, toplevel
from repro.testing import differential_test, enumerate_queries
from repro.zonegen import (
    ZoneGenerator,
    GeneratorConfig,
    chain_zone,
    evaluation_zone,
    paper_example_zone,
)


def name(text):
    return DnsName.from_text(text)


@pytest.fixture(scope="module")
def eval_setup():
    zone = evaluation_zone()
    encoder = ZoneEncoder(zone, extra_labels=["zz", "deep", "b"])
    flat = build_flat_zone(encoder)
    return zone, encoder, flat


def spec_answer(encoder, flat, qname_text, qtype):
    qname = name(qname_text)
    codes = [encoder.interner.code(lab) for lab in qname.reversed_labels]
    resp = GoResponse()
    toplevel.rrlookup(flat, codes, int(qtype), resp)
    return encoder.decode_response(Query(qname, qtype), resp)


class TestToplevelSpec:
    def test_positive_answer(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "www.example.com.", RRType.A)
        assert resp.rcode is RCode.NOERROR and resp.aa
        assert len(resp.answer) == 1
        assert resp.answer[0].rdata.to_text() == "192.0.2.10"

    def test_nodata_has_soa(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "www.example.com.", RRType.MX)
        assert resp.rcode is RCode.NOERROR and resp.aa
        assert not resp.answer
        assert [r.rtype for r in resp.authority] == [RRType.SOA]

    def test_nxdomain(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "zz.example.com.", RRType.A)
        assert resp.rcode is RCode.NXDOMAIN and resp.aa

    def test_refused_out_of_zone(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "zz.b.", RRType.A)
        assert resp.rcode is RCode.REFUSED and not resp.aa

    def test_empty_nonterminal_nodata(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "ent.wild.example.com.", RRType.A)
        assert resp.rcode is RCode.NOERROR
        assert not resp.answer

    def test_wildcard_synthesis(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "zz.wild.example.com.", RRType.A)
        assert resp.rcode is RCode.NOERROR and resp.aa
        assert resp.answer[0].rname == name("zz.wild.example.com.")

    def test_wildcard_multi_label(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "zz.zz.wild.example.com.", RRType.A)
        assert len(resp.answer) == 1

    def test_wildcard_blocked_by_ent(self, eval_setup):
        zone, encoder, flat = eval_setup
        # ent.wild exists (a.ent.wild has data): wildcard must not fire.
        resp = spec_answer(encoder, flat, "ent.wild.example.com.", RRType.MX)
        assert not resp.answer

    def test_wildcard_mx_gets_glue(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "zz.wild.example.com.", RRType.MX)
        assert len(resp.answer) == 1
        # ns2 has A + AAAA glue.
        assert len(resp.additional) == 2

    def test_referral(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "deep.sub.example.com.", RRType.A)
        assert resp.rcode is RCode.NOERROR and not resp.aa
        assert len(resp.authority) == 2  # two NS at the cut
        assert len(resp.additional) == 2  # glue for both targets

    def test_exact_delegation_is_referral(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "sub.example.com.", RRType.A)
        assert not resp.aa and len(resp.authority) == 2

    def test_any_returns_all(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "example.com.", RRType.ANY)
        types = {r.rtype for r in resp.answer}
        assert RRType.SOA in types and RRType.NS in types

    def test_cname_chase(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "alias.example.com.", RRType.A)
        types = [r.rtype for r in resp.answer]
        assert types == [RRType.CNAME, RRType.A]

    def test_cname_qtype_cname_no_chase(self, eval_setup):
        zone, encoder, flat = eval_setup
        resp = spec_answer(encoder, flat, "alias.example.com.", RRType.CNAME)
        assert [r.rtype for r in resp.answer] == [RRType.CNAME]


class TestReferenceResolver:
    def test_agrees_with_spec_on_eval_zone(self):
        result = differential_test(evaluation_zone(), "verified")
        assert result.clean

    def test_agrees_on_chain_zone(self):
        result = differential_test(chain_zone(), "verified")
        assert result.clean

    def test_external_cname_not_chased(self):
        zone = chain_zone()
        resp = reference_resolve(zone, Query(name("external.example.com."), RRType.A))
        assert [r.rtype for r in resp.answer] == [RRType.CNAME]
        assert resp.rcode is RCode.NOERROR

    def test_two_hop_chain(self):
        zone = chain_zone()
        resp = reference_resolve(zone, Query(name("one.example.com."), RRType.A))
        assert [r.rtype for r in resp.answer] == [RRType.CNAME, RRType.CNAME, RRType.A]

    def test_wildcard_cname_synthesis(self):
        zone = chain_zone()
        resp = reference_resolve(zone, Query(name("zz.wcname.example.com."), RRType.A))
        assert resp.answer[0].rname == name("zz.wcname.example.com.")
        assert resp.answer[0].rtype is RRType.CNAME
        assert resp.answer[-1].rtype is RRType.A


class TestRandomZoneAgreement:
    @pytest.mark.parametrize("index", range(8))
    def test_three_way_agreement(self, index):
        generator = ZoneGenerator(
            GeneratorConfig(seed=42, num_hosts=5, num_wildcards=2,
                            num_delegations=1, num_cnames=2, num_mx=1)
        )
        zone = generator.generate(index)
        result = differential_test(zone, "verified")
        assert result.clean, result.describe()

    def test_query_corpus_is_substantial(self):
        queries = enumerate_queries(evaluation_zone())
        assert len(queries) > 100

"""Edge-case tests for summarization and summary application."""

import pytest

from repro.frontend import compile_source
from repro.frontend.runtime import GoStruct
from repro.solver import SolveResult, Solver, bool_const, eq, ge, iconst, ivar, le
from repro.summary import (
    FixedValue,
    NewObject,
    ResultStruct,
    SymbolicBool,
    SymbolicInt,
    summarize,
)
from repro.symex import Executor, HeapLoader, ListVal, PathState, StructVal, SymexError


SOURCE = """
class Out(GoStruct):
    code: int
    items: list[int]

class Inner(GoStruct):
    v: int

class Holder(GoStruct):
    inner: Inner
    code: int

def noop(a: int, res: Out) -> None:
    pass

def conditional_noop(a: int, res: Out) -> None:
    if a > 5:
        res.code = 1

def nested_alloc(a: int, res: Holder) -> None:
    res.inner = Inner(v=a)
    res.code = 2

def chained_alloc(a: int, res: Out) -> Inner:
    b = Inner(v=a + 1)
    res.code = 3
    return b

def reads_own_appends(a: int, res: Out) -> int:
    res.items.append(a)
    res.items.append(a + 1)
    return res.items[0] + len(res.items)
"""


def make_executor():
    return Executor([compile_source(SOURCE, "edge")])


class TestSummarizationEdges:
    def test_noop_summary_has_empty_case(self):
        executor = make_executor()
        summary = summarize(executor, "noop", [SymbolicInt("a"), ResultStruct("Out")])
        assert len(summary) == 1
        case = summary.cases[0]
        assert not case.effects and case.ret is None

    def test_conditional_effect_cases(self):
        executor = make_executor()
        summary = summarize(
            executor, "conditional_noop", [SymbolicInt("a"), ResultStruct("Out")]
        )
        effectful = [c for c in summary.cases if c.effects]
        empty = [c for c in summary.cases if not c.effects]
        assert len(effectful) == 1 and len(empty) == 1

    def test_pointer_field_write_of_new_object(self):
        executor = make_executor()
        summary = summarize(
            executor, "nested_alloc", [SymbolicInt("a"), ResultStruct("Holder")]
        )
        (case,) = summary.cases
        news = [e for e in case.effects if isinstance(e, NewObject)]
        assert len(news) == 1 and news[0].struct_name == "Inner"

    def test_returned_allocation(self):
        executor = make_executor()
        summary = summarize(
            executor, "chained_alloc", [SymbolicInt("a"), ResultStruct("Out")]
        )
        (case,) = summary.cases
        assert case.ret is not None

    def test_module_reading_its_own_result_writes(self):
        # Reading back your own appends is fine (they exist in memory during
        # summarization); only *pre-existing* result content is off-limits.
        executor = make_executor()
        summary = summarize(
            executor, "reads_own_appends", [SymbolicInt("a"), ResultStruct("Out")]
        )
        (case,) = summary.cases
        # ret = a + 2 (items[0]=a, len=2).
        assert dict(case.ret.coeffs) == {"a": 1}
        assert case.ret.const == 2


class TestApplicationEdges:
    def _fresh_out(self, state):
        items = state.memory.alloc(ListVal.concrete(()))
        return state.memory.alloc(StructVal("Out", (iconst(0), items)))

    def test_apply_nested_alloc_materialises_object(self):
        executor = make_executor()
        summary = summarize(
            executor, "nested_alloc", [SymbolicInt("a"), ResultStruct("Holder")]
        )
        state = PathState()
        holder = state.memory.alloc(StructVal("Holder", (None, iconst(0))))
        outcomes = summary.apply(executor, state, [ivar("z"), holder])
        assert len(outcomes) == 1
        final = outcomes[0].state.memory
        content = final.content(holder.block_id)
        inner = final.content(content.fields[0].block_id)
        assert inner.type_name == "Inner"
        assert inner.fields[0] == ivar("z")

    def test_apply_prunes_by_pc(self):
        executor = make_executor()
        summary = summarize(
            executor, "conditional_noop", [SymbolicInt("a"), ResultStruct("Out")]
        )
        state = PathState()
        out = self._fresh_out(state)
        state.assume(le(ivar("w"), 3))
        outcomes = summary.apply(executor, state, [ivar("w"), out])
        # a>5 case infeasible under w<=3.
        assert len(outcomes) == 1
        final = outcomes[0].state.memory.content(out.block_id)
        assert final.fields[0] == iconst(0)

    def test_apply_substitutes_concrete_argument(self):
        executor = make_executor()
        summary = summarize(
            executor, "conditional_noop", [SymbolicInt("a"), ResultStruct("Out")]
        )
        state = PathState()
        out = self._fresh_out(state)
        outcomes = summary.apply(executor, state, [iconst(9), out])
        assert len(outcomes) == 1
        final = outcomes[0].state.memory.content(out.block_id)
        assert final.fields[0] == iconst(1)

    def test_apply_wrong_arity_rejected(self):
        executor = make_executor()
        summary = summarize(executor, "noop", [SymbolicInt("a"), ResultStruct("Out")])
        with pytest.raises(SymexError):
            summary.apply(executor, PathState(), [iconst(1)])

    def test_apply_nil_result_pointer_rejected(self):
        from repro.symex import NULL

        executor = make_executor()
        summary = summarize(executor, "noop", [SymbolicInt("a"), ResultStruct("Out")])
        with pytest.raises(SymexError):
            summary.apply(executor, PathState(), [iconst(1), NULL])

"""Unit tests for automated summarization (section 5.3 patterns)."""

import pytest

from repro.frontend import compile_source
from repro.frontend.runtime import GoStruct
from repro.solver import SolveResult, Solver, and_, eq, ge, iconst, ivar, le
from repro.solver.terms import bool_const, bvar
from repro.summary import (
    FieldWrite,
    FixedValue,
    ListAppend,
    NewObject,
    ResultStruct,
    SymbolicBool,
    SymbolicInt,
    UnsupportedEffectError,
    summarize,
)
from repro.symex import Executor, HeapLoader, PathState, StructVal


SOURCE = """
class Result(GoStruct):
    code: int
    items: list[int]

class Box(GoStruct):
    value: int

def compute(a: int, flag: bool, res: Result) -> int:
    if flag:
        res.code = 1
        return 0
    if a > 10:
        res.code = 2
        res.items.append(a)
        res.items.append(a + 1)
    else:
        res.code = 3
    return a

def make_box(a: int, res: Result) -> Box:
    b = Box(value=a * 2)
    res.code = 7
    return b

def caller(a: int, flag: bool, res: Result) -> int:
    x = compute(a, flag, res)
    return x + 100
"""


def build_executor():
    module = compile_source(SOURCE)
    return Executor([module])


def summarize_compute(executor):
    return summarize(
        executor,
        "compute",
        [SymbolicInt("a"), SymbolicBool("flag"), ResultStruct("Result")],
    )


class TestSummarization:
    def test_case_count(self):
        summary = summarize_compute(build_executor())
        assert len(summary) == 3

    def test_conditions_partition(self):
        summary = summarize_compute(build_executor())
        solver = Solver()
        # Cases are mutually exclusive.
        for i, ci in enumerate(summary.cases):
            for j, cj in enumerate(summary.cases):
                if i < j:
                    assert solver.check(ci.condition, cj.condition) is SolveResult.UNSAT

    def test_field_write_effects(self):
        summary = summarize_compute(build_executor())
        writes = {
            effect.value
            for case in summary.cases
            for effect in case.effects
            if isinstance(effect, FieldWrite) and effect.field_name == "code"
        }
        assert {iconst(1), iconst(2), iconst(3)} == writes

    def test_append_effects_symbolic_values(self):
        summary = summarize_compute(build_executor())
        appends = [
            effect
            for case in summary.cases
            for effect in case.effects
            if isinstance(effect, ListAppend)
        ]
        assert len(appends) == 2
        values = {repr(a.value) for a in appends}
        assert "a" in values and "a + 1" in values

    def test_newobject_effect(self):
        executor = build_executor()
        summary = summarize(
            executor, "make_box", [SymbolicInt("a"), ResultStruct("Result")]
        )
        (case,) = summary.cases
        news = [e for e in case.effects if isinstance(e, NewObject)]
        assert len(news) == 1
        assert news[0].struct_name == "Box"
        assert dict(news[0].field_values[0].coeffs) == {"a": 2}
        # Return value references the allocated object.
        assert case.ret == news[0].tag

    def test_describe_is_readable(self):
        summary = summarize_compute(build_executor())
        text = summary.describe()
        assert "summary_spec compute" in text
        assert "append" in text

    def test_panic_paths_become_panic_cases(self):
        source = SOURCE + (
            "\ndef risky(xs: list[int], res: Result) -> int:\n"
            "    res.code = 4\n"
            "    return xs[5]\n"
        )
        module = compile_source(source)
        executor = Executor([module])
        state = PathState()
        lst = HeapLoader(state.memory).load([1, 2])
        summary = summarize(
            executor,
            "risky",
            [FixedValue(lst), ResultStruct("Result")],
            state=state,
        )
        assert any(case.panic is not None for case in summary.cases)


class TestApplication:
    def test_summary_matches_inline_execution(self):
        # Verify `caller` twice: once inlining compute, once against its
        # summary; both must produce identical return sets per condition.
        executor_inline = build_executor()
        executor_summary = build_executor()
        summary = summarize_compute(executor_summary)
        executor_summary.bindings.bind_summary("compute", summary)

        def run(executor):
            state = PathState()
            res_ptr = state.memory.alloc(
                StructVal("Result", (iconst(0), state.memory.alloc_slot()))
            )
            # give it a real empty list field
            from repro.symex import ListVal

            state.memory.replace(
                res_ptr.block_id,
                StructVal(
                    "Result",
                    (iconst(0), state.memory.alloc(ListVal.concrete(()))),
                ),
            )
            outs = executor.run(
                "caller", [ivar("a"), bvar("flag"), res_ptr], state=state
            )
            solver = Solver()
            summary_set = set()
            for out in outs:
                res = out.state.memory.content(res_ptr.block_id)
                summary_set.add((repr(out.value), repr(res.fields[0])))
            return summary_set

        assert run(executor_inline) == run(executor_summary)

    def test_apply_respects_caller_pc(self):
        executor = build_executor()
        summary = summarize_compute(executor)
        executor.bindings.bind_summary("compute", summary)
        state = PathState()
        from repro.symex import ListVal

        res_ptr = state.memory.alloc(
            StructVal("Result", (iconst(0), state.memory.alloc(ListVal.concrete(())))),
        )
        outs = executor.run(
            "caller",
            [ivar("a"), bool_const(False), res_ptr],
            state=state,
            pre=[ge(ivar("a"), 20)],
        )
        # flag false and a >= 20: only the a>10 case is feasible.
        assert len(outs) == 1
        res = outs[0].state.memory.content(res_ptr.block_id)
        assert res.fields[0] == iconst(2)
        items = outs[0].state.memory.content(res.fields[1].block_id)
        assert len(items.items) == 2

    def test_fixed_value_mismatch_rejected(self):
        from repro.symex import SymexError

        executor = build_executor()
        state = PathState()
        lst1 = HeapLoader(state.memory).load([1])
        lst2 = HeapLoader(state.memory).load([1])
        source = (
            "def reader(xs: list[int]) -> int:\n"
            "    return len(xs)\n"
        )
        module = compile_source(source)
        executor2 = Executor([module])
        summary = summarize(executor2, "reader", [FixedValue(lst1)], state=state)
        executor2.bindings.bind_summary("reader", summary)
        with pytest.raises(SymexError):
            summary.apply(executor2, state, [lst2])

    def test_write_outside_result_rejected(self):
        source = (
            "class Cell(GoStruct):\n"
            "    v: int\n"
            "def writer(c: Cell) -> None:\n"
            "    c.v = 9\n"
        )
        module = compile_source(source)
        executor = Executor([module])
        state = PathState()

        class Cell(GoStruct):
            v: int

        ptr = HeapLoader(state.memory).load(Cell(v=1))
        with pytest.raises(UnsupportedEffectError):
            summarize(executor, "writer", [FixedValue(ptr)], state=state)

"""Unit tests for the symbolic executor on small GoPy programs."""

import pytest

from repro.frontend import compile_source
from repro.frontend.runtime import GoStruct
from repro.solver import Solver, SolveResult, eq, ge, iconst, ivar, le, ne
from repro.solver.terms import TRUE, and_, bool_const, not_
from repro.symex import (
    Executor,
    HeapLoader,
    ListVal,
    Memory,
    NULL,
    PathState,
    SymexError,
    concretize_value,
)


def make_executor(source, **kwargs):
    module = compile_source(source)
    return Executor([module], **kwargs)


def normal(outcomes):
    return [o for o in outcomes if not o.is_panic]


def panics(outcomes):
    return [o for o in outcomes if o.is_panic]


class TestStraightLine:
    def test_concrete_arithmetic(self):
        ex = make_executor("def f(a: int) -> int:\n    return a * 2 + 1\n")
        (out,) = ex.run("f", [iconst(5)])
        assert out.value == iconst(11)

    def test_symbolic_arithmetic(self):
        ex = make_executor("def f(a: int) -> int:\n    return a + a\n")
        (out,) = ex.run("f", [ivar("a")])
        assert dict(out.value.coeffs) == {"a": 2}

    def test_locals(self):
        ex = make_executor(
            "def f(a: int) -> int:\n    x = a + 1\n    y = x * 3\n    return y - x\n"
        )
        (out,) = ex.run("f", [ivar("a")])
        # (a+1)*3 - (a+1) == 2a + 2
        assert dict(out.value.coeffs) == {"a": 2}
        assert out.value.const == 2


class TestBranching:
    SOURCE = (
        "def f(a: int) -> int:\n"
        "    if a > 10:\n"
        "        return 1\n"
        "    return 0\n"
    )

    def test_symbolic_fork(self):
        ex = make_executor(self.SOURCE)
        outs = ex.run("f", [ivar("a")])
        assert len(outs) == 2
        values = sorted(o.value.const for o in outs)
        assert values == [0, 1]

    def test_path_conditions_partition(self):
        ex = make_executor(self.SOURCE)
        outs = ex.run("f", [ivar("a")])
        solver = Solver()
        taken = [o for o in outs if o.value == iconst(1)][0]
        not_taken = [o for o in outs if o.value == iconst(0)][0]
        # pc of the taken branch entails a > 10.
        solver.add(*taken.state.pc)
        assert solver.entails(ne(ivar("a"), 5))
        solver2 = Solver()
        solver2.add(*not_taken.state.pc)
        assert solver2.check(eq(ivar("a"), 5)) is SolveResult.SAT

    def test_precondition_prunes(self):
        ex = make_executor(self.SOURCE)
        outs = ex.run("f", [ivar("a")], pre=[le(ivar("a"), 3)])
        assert len(outs) == 1
        assert outs[0].value == iconst(0)

    def test_concrete_branch_no_fork(self):
        ex = make_executor(self.SOURCE)
        outs = ex.run("f", [iconst(42)])
        assert len(outs) == 1 and outs[0].value == iconst(1)

    def test_nested_branches(self):
        ex = make_executor(
            "def f(a: int, b: int) -> int:\n"
            "    if a > 0:\n"
            "        if b > 0:\n"
            "            return 3\n"
            "        return 2\n"
            "    return 1\n"
        )
        outs = ex.run("f", [ivar("a"), ivar("b")])
        assert sorted(o.value.const for o in outs) == [1, 2, 3]

    def test_short_circuit_paths(self):
        ex = make_executor(
            "def f(a: int, b: int) -> bool:\n"
            "    return a > 0 and b > 0\n"
        )
        outs = ex.run("f", [ivar("a"), ivar("b")])
        # The a<=0 side short-circuits to false; the a>0 side returns the
        # residual symbolic value of b>0 without forking further.
        assert len(outs) == 2
        values = {repr(o.value) for o in outs}
        assert "false" in values


class TestLoops:
    def test_concrete_loop(self):
        ex = make_executor(
            "def f(n: int) -> int:\n"
            "    total = 0\n"
            "    for i in range(n):\n"
            "        total += i\n"
            "    return total\n"
        )
        (out,) = ex.run("f", [iconst(5)])
        assert out.value == iconst(10)

    def test_symbolic_bounded_loop_forks_per_iteration(self):
        ex = make_executor(
            "def f(n: int) -> int:\n"
            "    total = 0\n"
            "    i = 0\n"
            "    while i < n:\n"
            "        total += 1\n"
            "        i += 1\n"
            "    return total\n"
        )
        n = ivar("n")
        outs = ex.run("f", [n], pre=[ge(n, 0), le(n, 3)])
        assert sorted(o.value.const for o in outs) == [0, 1, 2, 3]


STRUCT_SOURCE = """
class Point(GoStruct):
    x: int
    y: int

def get_x(p: Point) -> int:
    return p.x

def swap(p: Point) -> None:
    t = p.x
    p.x = p.y
    p.y = t

def fresh(a: int) -> Point:
    return Point(x=a, y=a + 1)
"""


class TestStructs:
    def test_nil_panic_reachable(self):
        ex = make_executor(STRUCT_SOURCE)
        outs = ex.run("get_x", [NULL])
        assert len(outs) == 1 and outs[0].is_panic
        assert outs[0].panic.kind == "nil-dereference"

    def test_loaded_heap_access(self):
        ex = make_executor(STRUCT_SOURCE)

        class Point(GoStruct):
            x: int
            y: int

        state = PathState()
        ptr = HeapLoader(state.memory).load(Point(x=7, y=9))
        (out,) = ex.run("get_x", [ptr], state=state)
        assert out.value == iconst(7)

    def test_mutation_visible_in_memory(self):
        ex = make_executor(STRUCT_SOURCE)

        class Point(GoStruct):
            x: int
            y: int

        state = PathState()
        ptr = HeapLoader(state.memory).load(Point(x=1, y=2))
        (out,) = ex.run("swap", [ptr], state=state)
        decoded = concretize_value(ptr, out.state.memory, registry=ex.registry)
        assert decoded["x"] == 2 and decoded["y"] == 1

    def test_newobject_fields(self):
        ex = make_executor(STRUCT_SOURCE)
        (out,) = ex.run("fresh", [ivar("a")])
        decoded = out.state.memory.content(out.value.block_id)
        assert decoded.fields[0] == ivar("a")

    def test_partial_abstraction_mixed_fields(self):
        # One field symbolic, one concrete, in the same struct block —
        # the section 5.1 flexible-memory-model property.
        ex = make_executor(STRUCT_SOURCE)

        class Point(GoStruct):
            x: int
            y: int

        state = PathState()
        obj = Point(x=5, y=0)
        obj.y = ivar("sym")
        ptr = HeapLoader(state.memory).load(obj)
        (out,) = ex.run("swap", [ptr], state=state)
        content = out.state.memory.content(ptr.block_id)
        assert content.fields[0] == ivar("sym")
        assert content.fields[1] == iconst(5)


LIST_SOURCE = """
def head(xs: list[int]) -> int:
    return xs[0]

def safe_head(xs: list[int]) -> int:
    if len(xs) > 0:
        return xs[0]
    return -1

def push(xs: list[int], v: int) -> None:
    xs.append(v)
"""


class TestLists:
    def _state_with(self, items, length=None):
        state = PathState()
        if length is None:
            lst = ListVal.concrete(items)
        else:
            lst = ListVal(tuple(items), length)
        ptr = state.memory.alloc(lst)
        return state, ptr

    def test_concrete_bounds_ok(self):
        ex = make_executor(LIST_SOURCE)
        state, ptr = self._state_with([iconst(4)])
        outs = ex.run("head", [ptr], state=state)
        assert len(outs) == 1 and outs[0].value == iconst(4)

    def test_empty_list_panics(self):
        ex = make_executor(LIST_SOURCE)
        state, ptr = self._state_with([])
        outs = ex.run("head", [ptr], state=state)
        assert len(outs) == 1 and outs[0].panic.kind == "index-out-of-bounds"

    def test_symbolic_length_unguarded_panic_path(self):
        ex = make_executor(LIST_SOURCE)
        length = ivar("len")
        state, ptr = self._state_with([ivar("x0"), ivar("x1")], length)
        outs = ex.run(
            "head", [ptr], state=state, pre=[ge(length, 0), le(length, 2)]
        )
        kinds = {o.panic.kind for o in panics(outs)}
        assert "index-out-of-bounds" in kinds  # len == 0 is feasible
        assert normal(outs)  # and so is len > 0

    def test_symbolic_length_guarded_no_panic(self):
        ex = make_executor(LIST_SOURCE)
        length = ivar("len")
        state, ptr = self._state_with([ivar("x0"), ivar("x1")], length)
        outs = ex.run(
            "safe_head", [ptr], state=state, pre=[ge(length, 0), le(length, 2)]
        )
        assert not panics(outs)
        values = {o.value for o in outs}
        assert iconst(-1) in values and ivar("x0") in values

    def test_append_grows(self):
        ex = make_executor(LIST_SOURCE)
        state, ptr = self._state_with([iconst(1)])
        (out,) = ex.run("push", [ptr, ivar("v")], state=state)
        content = out.state.memory.content(ptr.block_id)
        assert len(content.items) == 2 and content.items[1] == ivar("v")

    def test_append_to_symbolic_length_rejected(self):
        ex = make_executor(LIST_SOURCE)
        state, ptr = self._state_with([ivar("x0")], ivar("len"))
        with pytest.raises(SymexError):
            ex.run("push", [ptr, iconst(1)], state=state,
                   pre=[ge(ivar("len"), 0), le(ivar("len"), 1)])


class TestCalls:
    SOURCE = (
        "def helper(a: int) -> int:\n"
        "    if a > 0:\n"
        "        return a\n"
        "    return 0 - a\n"
        "def f(a: int) -> int:\n"
        "    return helper(a) + 1\n"
    )

    def test_inlined_call_forks(self):
        ex = make_executor(self.SOURCE)
        outs = ex.run("f", [ivar("a")])
        assert len(outs) == 2

    def test_binding_replaces_code(self):
        # Replace helper by a spec that returns 99 unconditionally.
        spec_module = compile_source("def helper_spec(a: int) -> int:\n    return 99\n")
        module = compile_source(self.SOURCE)
        ex = Executor([module])
        ex.bindings.bind_spec("helper", spec_module.get_function("helper_spec"))
        outs = ex.run("f", [ivar("a")])
        assert len(outs) == 1 and outs[0].value == iconst(100)

    def test_native_binding(self):
        from repro.symex import Outcome

        module = compile_source(self.SOURCE)
        ex = Executor([module])

        def native(executor, state, args):
            from repro.symex.executor import Outcome

            return [Outcome(state, iconst(7))]

        ex.bindings.bind_native("helper", native)
        outs = ex.run("f", [ivar("a")])
        assert outs[0].value == iconst(8)


class TestBudgets:
    def test_step_budget(self):
        from repro.symex import OutOfBudgetError

        ex = make_executor(
            "def f() -> int:\n"
            "    i = 0\n"
            "    while True:\n"
            "        i += 1\n"
            "    return i\n",
            max_steps=1000,
        )
        with pytest.raises(OutOfBudgetError):
            ex.run("f", [])

    def test_stats_populated(self):
        ex = make_executor(
            "def f(a: int) -> int:\n"
            "    if a > 0:\n"
            "        return 1\n"
            "    return 0\n"
        )
        ex.run("f", [ivar("a")])
        assert ex.stats.steps > 0
        assert ex.stats.forks >= 1
        assert ex.stats.paths == 2

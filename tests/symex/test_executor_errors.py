"""Executor failure modes: internal invariants must fail loudly (a
SymexError is a harness bug; a Panic outcome is a verification result —
the distinction is load-bearing for soundness)."""

import pytest

from repro.frontend import compile_source
from repro.solver import iconst, ivar
from repro.solver.terms import bool_const
from repro.symex import (
    Executor,
    HeapLoader,
    ListVal,
    NULL,
    OutOfBudgetError,
    PathState,
    StructVal,
    SymexError,
)

SOURCE = """
class Box(GoStruct):
    v: int

def get(b: Box) -> int:
    return b.v

def call_through(a: int) -> int:
    return missing_callee(a)

def missing_callee(a: int) -> int:
    return a
"""


def make_executor(**kwargs):
    return Executor([compile_source(SOURCE, "errs")], **kwargs)


class TestDispatchErrors:
    def test_unknown_callee_rejected(self):
        executor = make_executor()
        with pytest.raises(SymexError):
            executor.run("nonexistent", [])

    def test_wrong_arity_rejected(self):
        executor = make_executor()
        with pytest.raises(SymexError):
            executor.run("get", [])

    def test_bound_callee_found(self):
        executor = make_executor()
        # missing_callee exists in the module, so call_through works.
        (out,) = executor.run("call_through", [iconst(3)])
        assert out.value == iconst(3)


class TestTypeErrors:
    def test_int_where_pointer_expected(self):
        executor = make_executor()
        with pytest.raises(SymexError):
            executor.run("get", [iconst(5)])

    def test_bool_where_int_expected_is_caught_downstream(self):
        executor = make_executor()
        state = PathState()
        box = state.memory.alloc(StructVal("Box", (bool_const(True),)))
        # Loading a bool field typed int: the executor returns the stored
        # value; the *frontend* is the type checker. No crash expected.
        (out,) = executor.run("get", [box], state=state)
        assert out.value == bool_const(True)


class TestBudgets:
    def test_call_depth_budget(self):
        source = (
            "def rec(a: int) -> int:\n"
            "    return rec(a)\n"
        )
        executor = Executor([compile_source(source, "rec")], max_call_depth=16)
        with pytest.raises(OutOfBudgetError):
            executor.run("rec", [iconst(1)])

    def test_path_budget(self):
        # n independent symbolic branches -> 2^n paths.
        lines = ["def f(%s) -> int:" % ", ".join(f"a{i}: int" for i in range(12)),
                 "    total = 0"]
        for i in range(12):
            lines.append(f"    if a{i} > 0:")
            lines.append("        total += 1")
        lines.append("    return total")
        executor = Executor(
            [compile_source("\n".join(lines), "wide")], max_paths=100
        )
        with pytest.raises(OutOfBudgetError):
            executor.run("f", [ivar(f"a{i}") for i in range(12)])

    def test_stats_accumulate_across_runs(self):
        executor = make_executor()
        state = PathState()
        box = HeapLoader(state.memory).load
        executor.run("call_through", [iconst(1)])
        first = executor.stats.steps
        executor.run("call_through", [iconst(2)])
        assert executor.stats.steps > first


class TestIntrinsicGuards:
    def test_list_len_on_null(self):
        source = "def f(xs: list[int]) -> int:\n    return len(xs)\n"
        executor = Executor([compile_source(source, "l")])
        # The frontend guards len() with a nil check, so NULL reaches the
        # panic branch, not the intrinsic.
        (out,) = executor.run("f", [NULL])
        assert out.is_panic and out.panic.kind == "nil-dereference"

    def test_symbolic_length_list_len(self):
        source = "def f(xs: list[int]) -> int:\n    return len(xs)\n"
        executor = Executor([compile_source(source, "l2")])
        state = PathState()
        lst = state.memory.alloc(ListVal((ivar("a"),), ivar("n")))
        (out,) = executor.run("f", [lst], state=state)
        assert out.value == ivar("n")

"""Direct tests of the flexible memory model (section 5.1) and the heap
bridge."""

import pytest

from repro.frontend.runtime import GoStruct
from repro.solver import Solver, SolveResult, eq, iconst, ivar
from repro.symex import (
    HeapLoader,
    ListVal,
    Memory,
    NULL,
    Pointer,
    StructVal,
    SymexError,
    UNINIT,
    concretize_value,
)


class TestMemory:
    def test_alloc_distinct_blocks(self):
        memory = Memory()
        a = memory.alloc(iconst(1))
        b = memory.alloc(iconst(2))
        assert a.block_id != b.block_id

    def test_scalar_slot_roundtrip(self):
        memory = Memory()
        slot = memory.alloc_slot()
        memory.store(slot, iconst(7))
        assert memory.load(slot) == iconst(7)

    def test_uninitialised_load_rejected(self):
        memory = Memory()
        slot = memory.alloc_slot()
        with pytest.raises(SymexError):
            memory.load(slot)

    def test_struct_field_access(self):
        memory = Memory()
        ptr = memory.alloc(StructVal("S", (iconst(1), iconst(2))))
        assert memory.load(ptr.child(1)) == iconst(2)
        memory.store(ptr.child(0), ivar("x"))
        assert memory.load(ptr.child(0)) == ivar("x")

    def test_store_is_functional_update(self):
        # Contents are immutable: a fork sharing the old content must not
        # see later stores.
        memory = Memory()
        ptr = memory.alloc(StructVal("S", (iconst(1),)))
        fork = memory.clone()
        memory.store(ptr.child(0), iconst(9))
        assert memory.load(ptr.child(0)) == iconst(9)
        assert fork.load(ptr.child(0)) == iconst(1)

    def test_nil_access_rejected(self):
        memory = Memory()
        with pytest.raises(SymexError):
            memory.load(NULL)
        with pytest.raises(SymexError):
            memory.store(NULL, iconst(1))

    def test_dangling_block_rejected(self):
        memory = Memory()
        with pytest.raises(SymexError):
            memory.content(12345)

    def test_list_item_access(self):
        memory = Memory()
        ptr = memory.alloc(ListVal.concrete((iconst(10), iconst(20))))
        assert memory.load(ptr.child(1)) == iconst(20)

    def test_list_physical_bounds_guard(self):
        memory = Memory()
        ptr = memory.alloc(ListVal.concrete((iconst(10),)))
        with pytest.raises(SymexError):
            memory.load(ptr.child(5))

    def test_whole_aggregate_load_rejected(self):
        memory = Memory()
        ptr = memory.alloc(StructVal("S", (iconst(1),)))
        with pytest.raises(SymexError):
            memory.load(ptr)


class TestListVal:
    def test_append_concrete(self):
        lst = ListVal.concrete((iconst(1),))
        grown = lst.appended(iconst(2))
        assert len(grown.items) == 2 and grown.length == iconst(2)

    def test_append_symbolic_length_rejected(self):
        lst = ListVal((ivar("a"),), ivar("len"))
        with pytest.raises(ValueError):
            lst.appended(iconst(1))

    def test_partial_abstraction_in_list(self):
        # Mixed concrete/symbolic items in the same block.
        lst = ListVal.concrete((iconst(1), ivar("x")))
        assert lst.items[0].is_const and not lst.items[1].is_const


class _Pair(GoStruct):
    a: int
    b: "_Pair"


class TestHeapBridge:
    def test_shared_objects_share_blocks(self):
        memory = Memory()
        loader = HeapLoader(memory)
        shared = _Pair(a=1)
        left = _Pair(a=2, b=shared)
        right = _Pair(a=3, b=shared)
        lp, rp = loader.load(left), loader.load(right)
        l_content = memory.content(lp.block_id)
        r_content = memory.content(rp.block_id)
        assert l_content.fields[1] == r_content.fields[1]

    def test_distinct_objects_get_distinct_blocks(self):
        memory = Memory()
        loader = HeapLoader(memory)
        pointers = [loader.load(_Pair(a=i)) for i in range(50)]
        assert len({p.block_id for p in pointers}) == 50

    def test_cycle_loading(self):
        memory = Memory()
        loader = HeapLoader(memory)
        node = _Pair(a=1)
        node.b = node
        ptr = loader.load(node)
        content = memory.content(ptr.block_id)
        assert content.fields[1] == ptr

    def test_concretize_struct_with_model(self):
        memory = Memory()
        loader = HeapLoader(memory)
        obj = _Pair(a=0)
        obj.a = ivar("x")
        ptr = loader.load(obj)
        solver = Solver()
        solver.add(eq(ivar("x"), 42))
        assert solver.check() is SolveResult.SAT
        decoded = concretize_value(ptr, memory, solver.model())
        assert decoded["f0"] == 42

    def test_concretize_cycle(self):
        memory = Memory()
        loader = HeapLoader(memory)
        node = _Pair(a=5)
        node.b = node
        ptr = loader.load(node)
        decoded = concretize_value(ptr, memory)
        assert decoded["f1"] is decoded  # cycle preserved

    def test_concretize_symbolic_list_truncates_to_length(self):
        memory = Memory()
        lst = memory.alloc(ListVal((ivar("a"), ivar("b"), ivar("c")), ivar("len")))
        solver = Solver()
        solver.add(eq(ivar("len"), 2), eq(ivar("a"), 1), eq(ivar("b"), 2))
        solver.check()
        decoded = concretize_value(lst, memory, solver.model())
        assert decoded == [1, 2]

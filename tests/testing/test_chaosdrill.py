"""The serve-plane chaos drill: seeded packets, one real soak, the CLI.

The soak test is the expensive one in this file (~2s: it boots a real
server on loopback, drives ~120 packets with faults firing, lands gated
deltas and restarts over the journal) — it is the satellite's "fixed
seed, invariants hold" check. Everything else is cheap and pure.
"""

import json
import random
import struct

from repro import cli
from repro.testing import ChaosDrillConfig, chaos_drill
from repro.testing.chaosdrill import next_packet


class TestNextPacket:
    def test_seeded_stream_is_deterministic(self):
        first = [next_packet(random.Random(42), 0x4000 + i, 0.2)
                 for i in range(64)]
        second = [next_packet(random.Random(42), 0x4000 + i, 0.2)
                  for i in range(64)]
        assert first == second

    def test_mix_contains_valid_and_malformed(self):
        rng = random.Random(3)
        packets = [next_packet(rng, i, 0.3) for i in range(128)]
        short = [p for p in packets if len(p) < 12]
        qr_set = [p for p in packets
                  if len(p) >= 12
                  and struct.unpack("!H", p[2:4])[0] & 0x8000]
        valid = [p for p in packets
                 if len(p) >= 12
                 and not struct.unpack("!H", p[2:4])[0] & 0x8000]
        assert short and qr_set and valid

    def test_zero_malformed_fraction_is_all_valid(self):
        rng = random.Random(1)
        assert all(len(next_packet(rng, i, 0.0)) >= 12 for i in range(64))


class TestSoakInvariants:
    def test_fixed_seed_soak_holds_every_invariant(self, tmp_path):
        config = ChaosDrillConfig(seed=7, queries=120, deltas=2,
                                  fault_rate=0.02, grace=1.0)
        report = chaos_drill(config, workdir=str(tmp_path))
        assert report.clean, report.describe()
        assert report.queries_sent == 120
        # The mid-soak poisoned delta was pushed, and its digest was
        # never observed serving: the gate is what protected v2.0.
        kinds = [d["kind"] for d in report.deltas]
        assert "buggy" in kinds
        assert report.invariants["held_never_served"]
        # The ledger balanced under injected drops and malformed floods.
        assert report.metrics["conservation"]["conserved"]
        # The report survives the status/CI serialization path.
        round_tripped = json.loads(json.dumps(report.to_json()))
        assert round_tripped["clean"] is True
        assert round_tripped["seed"] == 7


class TestCli:
    def test_chaosdrill_requires_serve_flag(self, capsys):
        # Without --serve the command points at faultdrill and refuses:
        # a chaos soak is never an accidental side effect.
        assert cli.main(["chaosdrill"]) == 2
        assert "faultdrill" in capsys.readouterr().err

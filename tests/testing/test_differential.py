"""Tests for the SCALE-style differential tester."""

import pytest

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.testing import DifferentialResult, differential_test, enumerate_queries
from repro.zonegen import evaluation_zone, minimal_zone


class TestEnumeration:
    def test_includes_zone_names(self):
        zone = evaluation_zone()
        queries = enumerate_queries(zone)
        names = {q.qname for q in queries}
        for record in zone:
            assert record.rname in names

    def test_includes_wildcard_probes(self):
        zone = evaluation_zone()
        names = {q.qname for q in enumerate_queries(zone)}
        assert DnsName.from_text("zz.wild.example.com.") in names
        assert DnsName.from_text("zz.z0.wild.example.com.") in names

    def test_includes_out_of_zone(self):
        names = {q.qname for q in enumerate_queries(minimal_zone())}
        assert DnsName.from_text("www.elsewhere.org.") in names

    def test_crossed_with_all_types(self):
        queries = enumerate_queries(minimal_zone())
        types = {q.qtype for q in queries if q.qname == DnsName.from_text("www.example.com.")}
        assert RRType.ANY in types and RRType.MX in types


class TestDifferential:
    def test_verified_clean(self):
        result = differential_test(evaluation_zone(), "verified")
        assert result.clean
        assert result.queries_run > 100

    @pytest.mark.parametrize(
        "version,expected_fragment",
        [
            ("v1.0", "aa flag"),
            ("v2.0", "additional"),
            ("v3.0", "rcode"),
        ],
    )
    def test_buggy_versions_flagged(self, version, expected_fragment):
        result = differential_test(evaluation_zone(), version)
        assert not result.clean
        text = result.describe().lower()
        assert expected_fragment in text

    def test_dev_crash_reported(self):
        result = differential_test(evaluation_zone(), "dev")
        crashes = [d for d in result.divergences if d.crash]
        assert crashes
        assert "IndexError" in crashes[0].crash

    def test_custom_query_list(self):
        zone = minimal_zone()
        queries = [Query(DnsName.from_text("www.example.com."), RRType.A)]
        result = differential_test(zone, "verified", queries=queries)
        assert result.queries_run == 1 and result.clean

    def test_describe(self):
        result = differential_test(minimal_zone(), "verified")
        assert "CLEAN" in result.describe()

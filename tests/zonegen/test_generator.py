"""Tests for the randomized zone generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.rtypes import RRType
from repro.dns.zone import Zone
from repro.zonegen import (
    GeneratorConfig,
    ZoneGenerator,
    evaluation_zone,
    generate_zone,
    minimal_zone,
    paper_example_zone,
    chain_zone,
)


class TestCorpus:
    @pytest.mark.parametrize(
        "factory", [evaluation_zone, minimal_zone, paper_example_zone, chain_zone]
    )
    def test_corpus_zones_validate(self, factory):
        zone = factory()
        assert isinstance(zone, Zone)
        assert zone.soa is not None

    def test_evaluation_zone_has_bug_triggers(self):
        zone = evaluation_zone()
        # two-NS delegation (bug 4), wildcard with MX (bugs 1/5),
        # CNAME (bug 7), ENT under the wildcard parent (bugs 8/9).
        assert len([r for r in zone if r.rtype is RRType.NS and r.rname != zone.origin]) == 2
        wild_types = {r.rtype for r in zone if r.rname.is_wildcard}
        assert {RRType.A, RRType.MX} <= wild_types
        assert any(r.rtype is RRType.CNAME for r in zone)


class TestGenerator:
    def test_deterministic(self):
        a = generate_zone(seed=5, index=3)
        b = generate_zone(seed=5, index=3)
        assert [r.to_text() for r in a] == [r.to_text() for r in b]

    def test_different_indices_differ(self):
        a = generate_zone(seed=5, index=0)
        b = generate_zone(seed=5, index=1)
        assert [r.to_text() for r in a] != [r.to_text() for r in b]

    def test_stream(self):
        zones = list(ZoneGenerator(GeneratorConfig(seed=1)).stream(5))
        assert len(zones) == 5

    def test_features_present_over_corpus(self):
        config = GeneratorConfig(
            seed=9, num_hosts=6, num_wildcards=2, num_delegations=2,
            num_cnames=2, num_mx=2, num_srv=1,
        )
        wildcards = delegations = cnames = 0
        for zone in ZoneGenerator(config).stream(10):
            if any(r.rname.is_wildcard for r in zone):
                wildcards += 1
            if zone.delegation_points():
                delegations += 1
            if any(r.rtype is RRType.CNAME for r in zone):
                cnames += 1
        assert wildcards >= 7 and delegations >= 9 and cnames >= 9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 50))
    def test_property_always_valid(self, seed, index):
        # Construction validates; just creating the zone is the assertion.
        zone = generate_zone(seed=seed, index=index)
        assert len(zone) >= 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_label_universe_interned(self, seed):
        from repro.dns.interner import LabelInterner

        zone = generate_zone(seed=seed, index=0)
        interner = LabelInterner.for_zone(zone)
        for record in zone:
            for label in record.rname.labels:
                assert interner.has(label)

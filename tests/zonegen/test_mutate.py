"""Seeded zone mutation: valid outputs, byte-for-byte reproducibility."""

import os
import subprocess
import sys

import repro
from repro.dns.rtypes import RRType
from repro.dns.zonefile import zone_to_text
from repro.incremental.digest import zone_digest
from repro.zonegen import (
    MutationConfig,
    ZoneMutator,
    evaluation_zone,
    minimal_zone,
    mutate_zone,
)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestValidity:
    def test_mutants_are_valid_zones(self):
        mutator = ZoneMutator(MutationConfig(seed=5))
        zone = evaluation_zone()
        for index in range(20):
            mutant = mutator.mutate(zone, index=index)
            # Construction re-validates; reaching here means it passed.
            assert mutant.origin == zone.origin
            assert zone_digest(mutant) != zone_digest(zone)

    def test_soa_and_apex_ns_preserved(self):
        mutator = ZoneMutator(MutationConfig(seed=5, max_changes=3))
        zone = minimal_zone()
        for mutant in mutator.stream(zone, 15):
            soa = [r for r in mutant.records if r.rtype is RRType.SOA]
            apex_ns = [r for r in mutant.records
                       if r.rtype is RRType.NS and r.rname == mutant.origin]
            assert len(soa) == 1
            assert apex_ns

    def test_chain_keeps_drifting(self):
        mutator = ZoneMutator(MutationConfig(seed=5))
        chain = mutator.stream(evaluation_zone(), 5)
        digests = [zone_digest(z) for z in chain]
        assert len(set(digests)) == 5


class TestDeterminism:
    def test_same_inputs_same_mutant(self):
        zone = evaluation_zone()
        a = ZoneMutator(MutationConfig(seed=9)).mutate(zone, index=3)
        b = ZoneMutator(MutationConfig(seed=9)).mutate(zone, index=3)
        assert zone_to_text(a) == zone_to_text(b)

    def test_seed_and_index_matter(self):
        zone = evaluation_zone()
        base = mutate_zone(zone, seed=9, index=3)
        assert zone_to_text(mutate_zone(zone, seed=10, index=3)) != \
            zone_to_text(base)
        assert zone_to_text(mutate_zone(zone, seed=9, index=4)) != \
            zone_to_text(base)

    def test_mutant_depends_on_zone_content(self):
        a = mutate_zone(evaluation_zone(), seed=9, index=3)
        b = mutate_zone(minimal_zone(), seed=9, index=3)
        assert zone_to_text(a) != zone_to_text(b)

    def test_cross_process_byte_identical_corpus(self):
        """The resume contract: a mutation chain reproduces byte-for-byte
        in a fresh interpreter under a different PYTHONHASHSEED (the PRNG
        must key off content digests, never off randomized ``hash()``)."""
        script = (
            "from repro.dns.zonefile import zone_to_text\n"
            "from repro.zonegen import MutationConfig, ZoneMutator, "
            "evaluation_zone\n"
            "chain = ZoneMutator(MutationConfig(seed=9)).stream("
            "evaluation_zone(), 4)\n"
            "print('\\x00'.join(zone_to_text(z) for z in chain), end='')\n"
        )
        outputs = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONPATH=SRC_DIR,
                       PYTHONHASHSEED=hashseed)
            outputs.append(subprocess.run(
                [sys.executable, "-c", script], env=env, check=True,
                capture_output=True, text=True).stdout)
        assert outputs[0] == outputs[1]
        # And the subprocess corpus matches this process's.
        local = ZoneMutator(MutationConfig(seed=9)).stream(
            evaluation_zone(), 4)
        assert outputs[0] == "\x00".join(zone_to_text(z) for z in local)

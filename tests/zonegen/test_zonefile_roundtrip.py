"""Property: generated zones survive the zone-file text round trip, and
the round-tripped zone resolves identically."""

from hypothesis import given, settings, strategies as st

from repro.dns.message import Query
from repro.dns.rtypes import RRType
from repro.dns.zonefile import parse_zone_text, zone_to_text
from repro.spec import reference_resolve
from repro.zonegen import GeneratorConfig, ZoneGenerator, generate_zone


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500), st.integers(0, 20))
    def test_parse_serialize_fixpoint(self, seed, index):
        zone = generate_zone(seed=seed, index=index)
        text = zone_to_text(zone)
        reparsed = parse_zone_text(text)
        assert reparsed.origin == zone.origin
        assert sorted(r.sort_key() for r in reparsed) == sorted(
            r.sort_key() for r in zone
        )
        # Serialising again is a fixpoint.
        assert zone_to_text(reparsed) == text

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100))
    def test_roundtripped_zone_resolves_identically(self, seed):
        zone = generate_zone(seed=seed, index=0)
        reparsed = parse_zone_text(zone_to_text(zone))
        for name in list(zone.names())[:6]:
            for qtype in (RRType.A, RRType.ANY, RRType.MX):
                query = Query(name, qtype)
                a = reference_resolve(zone, query)
                b = reference_resolve(reparsed, query)
                assert a.semantically_equal(b), query.to_text()

    def test_ttl_preserved(self):
        zone = generate_zone(seed=3, index=1)
        reparsed = parse_zone_text(zone_to_text(zone))
        ttls = {r.sort_key(): r.ttl for r in zone}
        for record in reparsed:
            assert record.ttl == ttls[record.sort_key()]
